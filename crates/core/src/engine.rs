//! The serving engine: sessions, registry epochs, shared artifacts.
//!
//! [`ArachNet`] is a batch-of-one API — one borrowed model, one owned
//! registry, `&mut self` curation that blocks everything else. The
//! [`Engine`] is the concurrent serving redesign on top of the same
//! pipeline:
//!
//! * the registry is published as immutable **epochs** (`Arc<Registry>`
//!   snapshots with a sequence number). Sessions pin the epoch they were
//!   opened under; [`Engine::curate`] takes `&self`, builds the next
//!   registry off-line and swaps the epoch pointer — in-flight sessions
//!   are never blocked and never observe a half-curated registry;
//! * measurement artifacts live in per-scenario [`ArtifactStore`]s shared
//!   by every session of that scenario (and across epochs): the mapping
//!   run, the BGP update stream, probe campaigns are computed once per
//!   dataset, not once per query;
//! * a [`Session`] generates and executes any number of queries, from any
//!   thread (`Session: Send + Sync`) — execution itself fans out over the
//!   workflow DAG via [`workflow::execute_with`].

use std::collections::BTreeMap;
use std::sync::Arc;

use chaos::{ChaosRuntime, FaultPlan};
use llm::protocol::{QueryContext, WorkflowSummary};
use llm::LanguageModel;
use parking_lot::{Mutex, RwLock};
use registry::Registry;
use scenario_forge::{Family, FamilyParams, ScenarioBlueprint, SharedWorldCache};
use telemetry::{EventKind, MetricsSnapshot, Recorder, SpanKind, SpanStatus};
use toolkit::{ArtifactStore, ResilienceConfig, ResilientRuntime, StandardRuntime};
use workflow::{
    execute_with, ExecOptions, ExecutionReport, RetryPolicy, RunHealth, Value, Workflow,
};
use world::Scenario;

use crate::agents::AgentConfig;
use crate::orchestrator::{
    run_curation, run_pipeline, CurationOutcome, ExpertHooks, GeneratedSolution, PipelineError,
};

/// One immutable registry snapshot, tagged with its publication sequence.
#[derive(Debug)]
pub struct RegistryEpoch {
    /// Monotonic publication counter (0 is the bootstrap registry).
    pub sequence: u64,
    /// The registry as of this epoch.
    pub registry: Arc<Registry>,
}

/// Everything a scenario's sessions share.
#[derive(Clone)]
struct ScenarioSlot {
    scenario: Arc<Scenario>,
    artifacts: Arc<ArtifactStore>,
}

/// The serving engine. Cheap to share (`&Engine` is all a session needs
/// to open) and safe to curate while queries are in flight.
pub struct Engine {
    model: Arc<dyn LanguageModel>,
    config: AgentConfig,
    max_repairs: usize,
    workers: usize,
    retry: RetryPolicy,
    /// Fault-injection plan applied to every session's runtime (testing
    /// and chaos drills; `None` in production serving).
    fault_plan: Option<FaultPlan>,
    /// Circuit-breaker + fallback wiring applied to every session's
    /// runtime.
    resilience: Option<ResilienceConfig>,
    epoch: RwLock<Arc<RegistryEpoch>>,
    /// Serializes curation passes; the epoch swap itself is the only
    /// write-lock the readers ever contend with.
    curation: Mutex<()>,
    scenarios: Mutex<BTreeMap<String, ScenarioSlot>>,
    /// Running counters over every [`Engine::register_scenario`] outcome;
    /// see [`RegistrationStats`]. Campaigns registering thousands of
    /// fleet keys read these to *observe* collisions instead of fishing
    /// them out of logs.
    reg_stats: Mutex<RegistrationStats>,
    /// Content-addressed `Arc<World>` view: every scenario registered
    /// through [`Engine::register_family`] whose config matches an
    /// already-generated world shares that world. Generation delegates
    /// to [`scenario_forge::global_cache`], so engine fleets, case
    /// studies and benches in one process share one build per config;
    /// the view keeps deterministic per-engine generation stats.
    worlds: SharedWorldCache,
    /// Optional telemetry recorder handed to every session (spans,
    /// events, metrics) and to the serial registration lane (world-cache
    /// probes, epoch publications).
    recorder: Option<Arc<Recorder>>,
}

/// Outcome of [`Engine::register_scenario`].
#[derive(Clone)]
pub struct ScenarioRegistration {
    /// The scenario now serving the key — the existing one when a slot
    /// was kept, the offered one otherwise.
    pub scenario: Arc<Scenario>,
    /// Whether an existing slot (and its warm artifact store) was kept.
    pub kept_existing: bool,
    /// Whether the offered scenario matches the slot now serving the key
    /// (spec-compared); always `true` for fresh registrations. `false`
    /// means a re-registration offered a *different* timeline and was
    /// ignored — logged, because it is almost always a key-collision bug.
    pub matched: bool,
}

/// Aggregate outcome counters over every scenario registration an
/// engine has processed ([`Engine::register_scenario`] and the fleet
/// APIs built on it). `mismatched` is the count that used to live only
/// in a log line: re-registrations that offered a *different* timeline
/// under an existing key and were ignored.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistrationStats {
    /// Total registration attempts.
    pub registered: usize,
    /// Attempts that created a new slot.
    pub fresh: usize,
    /// Attempts that kept an existing slot (idempotent re-registration).
    pub kept_existing: usize,
    /// Kept slots where the offered timeline did *not* match the slot —
    /// almost always a key-collision bug in the caller's fleet naming.
    pub mismatched: usize,
}

/// One scenario of a family fleet, as registered by
/// [`Engine::register_family`].
#[derive(Clone)]
pub struct FamilyScenario {
    /// Engine key: `"<family-id>/<blueprint-name>"`.
    pub key: String,
    /// The registered (shared) scenario.
    pub scenario: Arc<Scenario>,
    /// Whether this key was newly registered (false: fleet re-registered).
    pub fresh: bool,
    /// Whether the forged blueprint matches the scenario now serving the
    /// key (see [`ScenarioRegistration::matched`]). `false` means an
    /// earlier fleet with colliding keys but a *different* timeline
    /// (e.g. same seed, different intensity) still serves this key.
    pub matched: bool,
}

impl Engine {
    /// Builds the engine over a model and the bootstrap registry
    /// (published as epoch 0).
    pub fn new(model: Arc<dyn LanguageModel>, registry: Registry) -> Engine {
        Engine {
            model,
            config: AgentConfig::default(),
            max_repairs: 2,
            workers: workflow::exec::default_workers(),
            retry: RetryPolicy::default(),
            fault_plan: None,
            resilience: None,
            epoch: RwLock::new(Arc::new(RegistryEpoch {
                sequence: 0,
                registry: Arc::new(registry),
            })),
            curation: Mutex::new(()),
            scenarios: Mutex::new(BTreeMap::new()),
            reg_stats: Mutex::new(RegistrationStats::default()),
            worlds: SharedWorldCache::over_global(),
            recorder: None,
        }
    }

    /// Attaches a deterministic telemetry recorder: sessions opened from
    /// this engine record session/workflow/step/attempt spans and
    /// resilience events into it, and the (serial) registration and
    /// curation lanes record world-cache probes and epoch publications.
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Engine {
        self.recorder = Some(recorder);
        self
    }

    /// Overrides the per-session executor worker count.
    pub fn with_exec_workers(mut self, workers: usize) -> Engine {
        self.workers = workers.max(1);
        self
    }

    /// Sets the retry budget sessions apply to transient tool failures.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Engine {
        self.retry = retry;
        self
    }

    /// Injects a deterministic fault plan into every session's runtime
    /// (chaos drills and resilience tests).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Engine {
        self.fault_plan = Some(plan);
        self
    }

    /// Wires circuit breakers and fallbacks into every session's runtime.
    /// Fallback targets are validated against the pinned epoch's registry
    /// when each session opens.
    pub fn with_resilience(mut self, config: ResilienceConfig) -> Engine {
        self.resilience = Some(config);
        self
    }

    /// The current epoch.
    pub fn epoch(&self) -> Arc<RegistryEpoch> {
        Arc::clone(&self.epoch.read())
    }

    /// The current epoch's registry.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.epoch.read().registry)
    }

    /// Registers a scenario under `key` (idempotent: an existing slot —
    /// and its warm artifact store — is kept). The returned
    /// [`ScenarioRegistration`] says whether the existing slot was kept
    /// and whether the offered scenario matched it; a kept-but-different
    /// re-registration is logged, since silently dropping a *different*
    /// timeline under a reused key is almost always a bug.
    pub fn register_scenario(&self, key: &str, scenario: Scenario) -> ScenarioRegistration {
        let registration = {
            let mut scenarios = self.scenarios.lock();
            match scenarios.entry(key.to_string()) {
                std::collections::btree_map::Entry::Occupied(slot) => {
                    let existing = Arc::clone(&slot.get().scenario);
                    let matched = existing.spec() == scenario.spec();
                    if !matched {
                        eprintln!(
                            "engine: scenario key {key:?} re-registered with a different \
                             timeline; keeping the existing slot"
                        );
                    }
                    ScenarioRegistration { scenario: existing, kept_existing: true, matched }
                }
                std::collections::btree_map::Entry::Vacant(slot) => {
                    let scenario = Arc::new(scenario);
                    slot.insert(ScenarioSlot {
                        scenario: Arc::clone(&scenario),
                        artifacts: Arc::new(ArtifactStore::new()),
                    });
                    ScenarioRegistration { scenario, kept_existing: false, matched: true }
                }
            }
        };
        let mut stats = self.reg_stats.lock();
        stats.registered += 1;
        if registration.kept_existing {
            stats.kept_existing += 1;
        } else {
            stats.fresh += 1;
        }
        if !registration.matched {
            stats.mismatched += 1;
        }
        registration
    }

    /// Aggregate counters over every registration this engine has seen —
    /// the fleet-stats view of [`ScenarioRegistration`] outcomes. A
    /// campaign that registered thousands of keys checks
    /// `mismatched == 0` here instead of scraping logs.
    pub fn registration_stats(&self) -> RegistrationStats {
        *self.reg_stats.lock()
    }

    /// Registers a whole scenario family fleet in one call: expands the
    /// family's blueprints, generates their worlds through the engine's
    /// content-addressed [`WorldCache`] (N scenarios sharing a config
    /// pay one generation and hold the *same* `Arc<World>`), and
    /// registers each scenario under `"<family-id>/<blueprint-name>"`.
    /// Sessions opened against any of the keys work unchanged.
    pub fn register_family(
        &self,
        family: Family,
        params: &FamilyParams,
    ) -> Vec<FamilyScenario> {
        self.register_blueprints(family.id(), &family.expand(params))
    }

    /// Registers an already-expanded blueprint fleet under
    /// `"<prefix>/<blueprint-name>"` keys — the same path
    /// [`Engine::register_family`] takes, exposed so composed and
    /// ensemble-swept blueprints (which no single [`Family`] expands to)
    /// ride the identical world-dedup and idempotency machinery.
    pub fn register_blueprints(
        &self,
        prefix: &str,
        blueprints: &[ScenarioBlueprint],
    ) -> Vec<FamilyScenario> {
        blueprints
            .iter()
            .map(|blueprint| {
                let key = format!("{}/{}", prefix, blueprint.name);
                if let Some(recorder) = &self.recorder {
                    // Registration is the engine's serial lane, so the
                    // warmth probe is safe to emit as a trace event; the
                    // cache itself is process-global, so whether a config
                    // is warm depends on what ran before in this process.
                    let cache_key = format!("world:{:016x}", blueprint.config.content_hash());
                    let warm = self.worlds.shared().get(&blueprint.config).is_some();
                    if warm {
                        recorder.counter_add("world_cache.hit", 1);
                        recorder.emit(EventKind::CacheHit { key: cache_key });
                    } else {
                        recorder.counter_add("world_cache.miss", 1);
                        recorder.emit(EventKind::CacheMiss { key: cache_key });
                    }
                }
                let world = self.worlds.get_or_generate(&blueprint.config);
                let registration = self.register_scenario(&key, blueprint.realize(world));
                FamilyScenario {
                    key,
                    scenario: registration.scenario,
                    fresh: !registration.kept_existing,
                    matched: registration.matched,
                }
            })
            .collect()
    }

    /// Registers several families at once (see [`Engine::register_family`]);
    /// worlds are deduplicated across the whole fleet.
    pub fn register_families(
        &self,
        families: &[Family],
        params: &FamilyParams,
    ) -> Vec<FamilyScenario> {
        families.iter().flat_map(|f| self.register_family(*f, params)).collect()
    }

    /// The fault plan injected into every session's runtime, when one is
    /// installed — provenance records stamp its seed so degraded campaign
    /// results stay reproducible.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// The engine's content-addressed world-cache view (diagnostics:
    /// distinct worlds this engine requested; actual builds happen at
    /// most once per process in the global cache underneath).
    pub fn world_cache(&self) -> &SharedWorldCache {
        &self.worlds
    }

    /// Scenario keys currently registered.
    pub fn scenario_keys(&self) -> Vec<String> {
        self.scenarios.lock().keys().cloned().collect()
    }

    /// Opens a session against a registered scenario. The session pins
    /// the *current* epoch and the scenario's shared artifact store.
    pub fn session(&self, scenario_key: &str) -> Result<Session, PipelineError> {
        let slot = self.scenarios.lock().get(scenario_key).cloned().ok_or_else(|| {
            PipelineError::Invalid(format!("unknown scenario {scenario_key:?}"))
        })?;
        let epoch = self.epoch();
        // Epoch consistency: the resilience wiring must be valid for the
        // registry snapshot this session pins — a curated swap that
        // dropped a fallback target surfaces here, not mid-query.
        if let Some(resilience) = &self.resilience {
            resilience.validate(&epoch.registry).map_err(PipelineError::Invalid)?;
        }
        Ok(Session {
            model: Arc::clone(&self.model),
            config: self.config.clone(),
            max_repairs: self.max_repairs,
            epoch,
            scenario: slot.scenario,
            artifacts: slot.artifacts,
            workers: self.workers,
            retry: self.retry,
            fault_plan: self.fault_plan.clone(),
            resilience: self.resilience.clone(),
            recorder: self.recorder.clone(),
        })
    }

    /// Runs RegistryCurator over a corpus of workflow summaries and — when
    /// it mined anything — publishes the grown registry as a **new
    /// epoch**. Takes `&self`: in-flight sessions keep executing against
    /// the epoch they pinned; only sessions opened afterwards see the
    /// composites.
    pub fn curate(
        &self,
        corpus: &[WorkflowSummary],
        min_uses: usize,
    ) -> Result<CurationOutcome, PipelineError> {
        let _pass = self.curation.lock();
        let current = self.epoch();
        let mut next = (*current.registry).clone();
        let outcome =
            run_curation(&*self.model, &self.config, &mut next, corpus, min_uses)?;
        if !outcome.added.is_empty() {
            let sequence = current.sequence + 1;
            *self.epoch.write() = Arc::new(RegistryEpoch {
                sequence,
                registry: Arc::new(next),
            });
            if let Some(recorder) = &self.recorder {
                recorder.emit(EventKind::EpochPublished { sequence });
            }
        }
        Ok(outcome)
    }
}

/// A generated-and-executed query, as a session returns it.
pub struct SessionRun {
    pub solution: GeneratedSolution,
    pub report: ExecutionReport,
    /// The run's health summary, lifted out of the report: `Ok`,
    /// `Degraded { failed_steps }` (every failure traces to non-critical
    /// enrichment — surviving outputs are trustworthy), or `Failed`.
    /// Callers distinguish "detector unavailable" from "no anomaly".
    pub health: RunHealth,
}

impl SessionRun {
    /// The executor metrics for this run (see `ExecutionReport::metrics`).
    pub fn metrics(&self) -> &MetricsSnapshot {
        &self.report.metrics
    }
}

/// One serving session: an epoch-pinned registry snapshot plus a shared
/// scenario. Sessions are `Send + Sync` — run many queries from many
/// threads against one session, or one query per session; the artifact
/// store underneath is shared either way.
pub struct Session {
    model: Arc<dyn LanguageModel>,
    config: AgentConfig,
    max_repairs: usize,
    epoch: Arc<RegistryEpoch>,
    scenario: Arc<Scenario>,
    artifacts: Arc<ArtifactStore>,
    workers: usize,
    retry: RetryPolicy,
    fault_plan: Option<FaultPlan>,
    resilience: Option<ResilienceConfig>,
    recorder: Option<Arc<Recorder>>,
}

impl Session {
    /// The epoch this session pinned at open time.
    pub fn epoch_sequence(&self) -> u64 {
        self.epoch.sequence
    }

    /// Attaches (or replaces) a telemetry recorder for this session only
    /// — campaigns use this to give every task its own recorder, so each
    /// task's trace hashes independently.
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Session {
        self.recorder = Some(recorder);
        self
    }

    /// The pinned registry snapshot.
    pub fn registry(&self) -> &Registry {
        &self.epoch.registry
    }

    /// The scenario under measurement.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// A tool runtime over this session's scenario and shared artifacts —
    /// useful for executing externally supplied workflows (e.g. expert
    /// baselines) against the same cache.
    pub fn runtime(&self) -> StandardRuntime {
        let runtime =
            StandardRuntime::shared(Arc::clone(&self.scenario), Arc::clone(&self.artifacts));
        match &self.recorder {
            Some(recorder) => runtime.with_recorder(Arc::clone(recorder)),
            None => runtime,
        }
    }

    /// Generates a solution for a query (standard mode).
    pub fn generate(
        &self,
        query: &str,
        context: &QueryContext,
    ) -> Result<GeneratedSolution, PipelineError> {
        self.generate_variant(query, context, 0)
    }

    /// Variant-seeded generation (ensemble machinery).
    pub fn generate_variant(
        &self,
        query: &str,
        context: &QueryContext,
        variant: u64,
    ) -> Result<GeneratedSolution, PipelineError> {
        run_pipeline(
            &*self.model,
            &self.config,
            self.max_repairs,
            &self.epoch.registry,
            query,
            context,
            variant,
            &ExpertHooks::default(),
        )
    }

    /// Expert mode: hooks run between pipeline stages.
    pub fn generate_expert(
        &self,
        query: &str,
        context: &QueryContext,
        hooks: &ExpertHooks,
    ) -> Result<GeneratedSolution, PipelineError> {
        run_pipeline(
            &*self.model,
            &self.config,
            self.max_repairs,
            &self.epoch.registry,
            query,
            context,
            0,
            hooks,
        )
    }

    /// Executes a workflow against the session's scenario, shared
    /// artifacts and pinned registry — through the session's resilience
    /// stack: the standard runtime, optionally under the engine's fault
    /// plan, optionally under circuit breakers/fallbacks (outermost, so
    /// breakers see injected faults exactly as they would real ones).
    pub fn execute(
        &self,
        workflow: &Workflow,
        query_args: &BTreeMap<String, Value>,
    ) -> ExecutionReport {
        let registry = &self.epoch.registry;
        let options = ExecOptions {
            workers: self.workers,
            retry: self.retry,
            recorder: self.recorder.clone(),
        };
        match (&self.fault_plan, &self.resilience) {
            (None, None) => {
                execute_with(workflow, registry, &self.runtime(), query_args, &options)
            }
            (Some(plan), None) => {
                let mut rt = ChaosRuntime::new(self.runtime(), plan.clone());
                if let Some(recorder) = &self.recorder {
                    rt = rt.with_recorder(Arc::clone(recorder));
                }
                execute_with(workflow, registry, &rt, query_args, &options)
            }
            (None, Some(config)) => {
                let mut rt = ResilientRuntime::new(self.runtime(), config.clone());
                if let Some(recorder) = &self.recorder {
                    rt = rt.with_recorder(Arc::clone(recorder));
                }
                execute_with(workflow, registry, &rt, query_args, &options)
            }
            (Some(plan), Some(config)) => {
                let mut chaos_rt = ChaosRuntime::new(self.runtime(), plan.clone());
                if let Some(recorder) = &self.recorder {
                    chaos_rt = chaos_rt.with_recorder(Arc::clone(recorder));
                }
                let mut rt = ResilientRuntime::new(chaos_rt, config.clone());
                if let Some(recorder) = &self.recorder {
                    rt = rt.with_recorder(Arc::clone(recorder));
                }
                execute_with(workflow, registry, &rt, query_args, &options)
            }
        }
    }

    /// Generates and executes in one call — the serving hot path. With a
    /// recorder attached, the whole run is wrapped in a `Session` span
    /// (named by the query) carrying the pinned epoch as an event; the
    /// span closes with the run's health.
    pub fn run(&self, query: &str, context: &QueryContext) -> Result<SessionRun, PipelineError> {
        if let Some(recorder) = &self.recorder {
            recorder.begin_span(SpanKind::Session, query);
            recorder.emit(EventKind::EpochPinned { sequence: self.epoch.sequence });
        }
        let solution = match self.generate(query, context) {
            Ok(solution) => solution,
            Err(e) => {
                if let Some(recorder) = &self.recorder {
                    recorder.end_span(SpanStatus::Failed);
                }
                return Err(e);
            }
        };
        let report = self.execute(&solution.workflow, &solution.query_args());
        let health = report.health.clone();
        if let Some(recorder) = &self.recorder {
            recorder.end_span(match &health {
                RunHealth::Ok => SpanStatus::Ok,
                RunHealth::Degraded { .. } => SpanStatus::Degraded,
                RunHealth::Failed { .. } => SpanStatus::Failed,
            });
        }
        Ok(SessionRun { solution, report, health })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm::DeterministicExpertModel;
    use registry::{CapabilityEntry, DataFormat, Param};
    use toolkit::{catalog, scenarios};

    fn mini_registry() -> Registry {
        let mut r = Registry::new();
        r.register(CapabilityEntry::new(
            "util.compile_disasters",
            "util",
            "compiles disaster specs into failure events",
            vec![
                Param::required("disasters", DataFormat::DisasterSpecs),
                Param::required("failure_probability", DataFormat::Scalar),
            ],
            DataFormat::FailureEventSpec,
        ))
        .unwrap();
        r.register(CapabilityEntry::new(
            "xaminer.event_impact",
            "xaminer",
            "processes failure events into a country impact table",
            vec![Param::required("event", DataFormat::FailureEventSpec)],
            DataFormat::CountryImpactTable,
        ))
        .unwrap();
        r
    }

    fn context(scenario: &Scenario) -> QueryContext {
        catalog::query_context(&scenario.world, scenario.now, 10)
    }

    const CS2_QUERY: &str = "Identify the impact of severe earthquakes and hurricanes \
                             globally assuming a 10% infra failure probability";

    fn engine() -> Engine {
        let engine =
            Engine::new(Arc::new(DeterministicExpertModel::new()), mini_registry());
        engine.register_scenario("cs2", scenarios::cs2_scenario());
        engine
    }

    #[test]
    fn session_generates_and_executes_end_to_end() {
        let engine = engine();
        let session = engine.session("cs2").unwrap();
        let ctx = context(session.scenario());
        let run = session.run(CS2_QUERY, &ctx).unwrap();
        assert!(run.report.all_ok(), "qa: {:?}", run.report.qa);
        assert!(!run.report.outputs.is_empty());
        assert_eq!(session.epoch_sequence(), 0);
    }

    #[test]
    fn unknown_scenario_is_an_invalid_request() {
        let engine = engine();
        assert!(matches!(engine.session("nope"), Err(PipelineError::Invalid(_))));
    }

    #[test]
    fn re_registration_reports_kept_slot_and_mismatch() {
        let engine = engine();
        let fresh = engine.register_scenario("alt", scenarios::cs3_scenario());
        assert!(!fresh.kept_existing);
        assert!(fresh.matched);

        // Same timeline again: kept, and it matches.
        let same = engine.register_scenario("alt", scenarios::cs3_scenario());
        assert!(same.kept_existing);
        assert!(same.matched);
        assert!(Arc::ptr_eq(&same.scenario, &fresh.scenario));

        // A *different* timeline under the same key: kept (old slot and
        // its artifacts win) but flagged as a mismatch.
        let clash = engine.register_scenario("alt", scenarios::cs4_scenario());
        assert!(clash.kept_existing);
        assert!(!clash.matched);
        assert!(Arc::ptr_eq(&clash.scenario, &fresh.scenario));
        assert_eq!(
            clash.scenario.spec(),
            fresh.scenario.spec(),
            "the existing timeline still serves the key"
        );
    }

    #[test]
    fn registration_stats_surface_collisions() {
        let engine = engine(); // "cs2" registered fresh
        assert_eq!(
            engine.registration_stats(),
            RegistrationStats { registered: 1, fresh: 1, kept_existing: 0, mismatched: 0 }
        );
        engine.register_scenario("cs2", scenarios::cs2_scenario()); // idempotent
        engine.register_scenario("cs2", scenarios::cs4_scenario()); // collision
        assert_eq!(
            engine.registration_stats(),
            RegistrationStats { registered: 3, fresh: 1, kept_existing: 2, mismatched: 1 }
        );
    }

    #[test]
    fn blueprint_fleets_register_like_families() {
        let engine = engine();
        let params = scenario_forge::FamilyParams::default();
        let family = scenario_forge::Family::CableCutCascade;
        let via_family = engine.register_family(family, &params);

        // The same expansion through the blueprint surface is a byte-level
        // no-op: every key collides with a matching timeline.
        let again = engine.register_blueprints(family.id(), &family.expand(&params));
        assert_eq!(again.len(), via_family.len());
        assert!(again.iter().all(|s| !s.fresh && s.matched));
        for (a, b) in again.iter().zip(&via_family) {
            assert_eq!(a.key, b.key);
            assert!(Arc::ptr_eq(&a.scenario, &b.scenario));
        }

        // A distinct prefix gives the same timelines their own slots.
        let prefixed = engine.register_blueprints("composed", &family.expand(&params));
        assert!(prefixed.iter().all(|s| s.fresh && s.matched));
        assert!(prefixed[0].key.starts_with("composed/"));
        assert_eq!(engine.registration_stats().mismatched, 0);
    }

    #[test]
    fn same_seed_different_config_is_still_a_mismatch() {
        // World identity is the full config, not the seed: two quiet
        // scenarios over same-seed worlds that differ in another knob
        // must not compare as matching re-registrations.
        let engine = engine();
        let base = world::Scenario::quiet(
            world::generate(&world::WorldConfig::default()),
            10,
        );
        let denser = world::Scenario::quiet(
            world::generate(&world::WorldConfig {
                probe_scale: 2.0,
                ..world::WorldConfig::default()
            }),
            10,
        );
        assert!(!engine.register_scenario("cfg", base).kept_existing);
        let clash = engine.register_scenario("cfg", denser);
        assert!(clash.kept_existing);
        assert!(!clash.matched);
    }

    #[test]
    fn family_fleet_shares_cached_worlds_across_scenarios() {
        let engine = engine();
        let params = scenario_forge::FamilyParams::default();
        let blackout =
            engine.register_family(scenario_forge::Family::RegionalBlackout, &params);
        let cascade =
            engine.register_family(scenario_forge::Family::CableCutCascade, &params);
        assert_eq!(blackout.len(), params.variants);
        assert!(blackout.iter().all(|s| s.fresh));

        // Both families script events over the same world config, so every
        // scenario holds the *same* Arc<World>: one generation total.
        for s in blackout.iter().chain(&cascade) {
            assert!(Arc::ptr_eq(&s.scenario.world, &blackout[0].scenario.world));
        }
        assert_eq!(engine.world_cache().generations(), 1);

        // Sessions open against family keys unchanged, and pin the same
        // shared world.
        let session = engine.session(&blackout[0].key).unwrap();
        assert!(Arc::ptr_eq(&session.scenario().world, &blackout[0].scenario.world));

        // Re-registering the fleet is idempotent: nothing fresh, nothing
        // regenerated, and every kept slot matches the offered timeline.
        let again = engine.register_family(scenario_forge::Family::RegionalBlackout, &params);
        assert!(again.iter().all(|s| !s.fresh && s.matched));
        assert_eq!(engine.world_cache().generations(), 1);

        // Same seed, different intensity: the blueprint names (and thus
        // keys) collide while the scripts differ — the kept slots must
        // surface the mismatch per scenario.
        let hotter = scenario_forge::FamilyParams { intensity: 1.0, ..params.clone() };
        let clash = engine.register_family(scenario_forge::Family::RegionalBlackout, &hotter);
        assert!(clash.iter().all(|s| !s.fresh && !s.matched));

        // A world-structure family names distinct configs → distinct worlds.
        let depeered =
            engine.register_family(scenario_forge::Family::TransitDePeering, &params);
        assert_eq!(engine.world_cache().generations(), 1 + params.variants);
        assert!(!Arc::ptr_eq(&depeered[0].scenario.world, &blackout[0].scenario.world));
    }

    #[test]
    fn curation_publishes_a_new_epoch_without_touching_open_sessions() {
        let engine = engine();
        let old_session = engine.session("cs2").unwrap();
        let ctx = context(old_session.scenario());
        let solution = old_session.generate(CS2_QUERY, &ctx).unwrap();
        let corpus = vec![solution.summary(true), solution.summary(true)];

        let before = engine.registry().len();
        let outcome = engine.curate(&corpus, 2).unwrap();
        assert_eq!(outcome.added.len(), 1, "rejected: {:?}", outcome.rejected);

        // The engine advanced...
        assert_eq!(engine.epoch().sequence, 1);
        assert_eq!(engine.registry().len(), before + 1);
        // ...but the open session still pins epoch 0 and keeps working.
        assert_eq!(old_session.epoch_sequence(), 0);
        assert_eq!(old_session.registry().len(), before);
        assert!(old_session.run(CS2_QUERY, &ctx).unwrap().report.all_ok());

        // A fresh session sees (and can execute) the mined composite.
        let new_session = engine.session("cs2").unwrap();
        assert_eq!(new_session.epoch_sequence(), 1);
        let composite = &outcome.added[0];
        assert!(new_session.registry().contains(composite));
        let s2 = new_session.generate(CS2_QUERY, &ctx).unwrap();
        assert!(
            s2.workflow.steps.len() <= solution.workflow.steps.len(),
            "curated epoch should not grow the plan ({} vs {})",
            s2.workflow.steps.len(),
            solution.workflow.steps.len()
        );
        assert!(new_session.run(CS2_QUERY, &ctx).unwrap().report.all_ok());
    }

    #[test]
    fn curation_without_new_composites_keeps_the_epoch() {
        let engine = engine();
        let session = engine.session("cs2").unwrap();
        let ctx = context(session.scenario());
        let solution = session.generate(CS2_QUERY, &ctx).unwrap();
        let corpus = vec![solution.summary(true), solution.summary(true)];
        engine.curate(&corpus, 2).unwrap();
        assert_eq!(engine.epoch().sequence, 1);
        // Second pass mines nothing new → no epoch churn.
        engine.curate(&corpus, 2).unwrap();
        assert_eq!(engine.epoch().sequence, 1);
    }

    #[test]
    fn family_registration_generates_once_at_any_thread_count() {
        for threads in [1usize, 2, 8] {
            let engine = engine();
            let params = scenario_forge::FamilyParams {
                seed: 2000 + threads as u64,
                ..scenario_forge::FamilyParams::default()
            };
            let fleets: Vec<Vec<FamilyScenario>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let engine = &engine;
                        let params = &params;
                        scope.spawn(move || {
                            engine.register_family(
                                scenario_forge::Family::CableCutCascade,
                                params,
                            )
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            // However many threads raced, the world was generated once and
            // every fleet's scenarios pin the same Arc<World>.
            assert_eq!(engine.world_cache().generations(), 1, "{threads} threads");
            let first = &fleets[0][0].scenario;
            for fleet in &fleets {
                for s in fleet {
                    assert!(Arc::ptr_eq(&s.scenario.world, &first.world));
                }
            }
        }
    }

    #[test]
    fn concurrent_sessions_share_artifacts_and_agree_with_sequential() {
        let engine = engine();
        let session = engine.session("cs2").unwrap();
        let ctx = context(session.scenario());
        let sequential = session.run(CS2_QUERY, &ctx).unwrap();

        // Eight concurrent sessions, one query each.
        let runs: Vec<SessionRun> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let engine = &engine;
                    let ctx = &ctx;
                    scope.spawn(move || {
                        engine.session("cs2").unwrap().run(CS2_QUERY, ctx).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for run in &runs {
            assert_eq!(run.solution.source_code, sequential.solution.source_code);
            assert_eq!(run.report, sequential.report);
        }
        // The expensive artifacts (mapping, default deps) are world-level
        // now: the scenario store stays empty and every session serves
        // them from the shared world-keyed store.
        let runtime = engine.session("cs2").unwrap().runtime();
        assert!(runtime.artifacts().is_empty(), "no scenario-level artifacts for cs2");
        assert!(runtime.world_artifacts().contains("nautilus.mapping"));
        assert!(runtime.world_artifacts().contains("nautilus.default_deps"));
    }

    #[test]
    fn engine_fleets_share_the_process_wide_world_cache() {
        // The PR-5 cache unification: a fleet whose config matches the
        // standard evaluation world holds the *same* Arc<World> the case
        // studies draw from scenario_forge::global_cache() — no duplicate
        // generation for a process mixing both. FamilyParams::default()
        // scripts over WorldConfig::default(), the standard world.
        let engine = engine();
        let params = scenario_forge::FamilyParams::default();
        let fleet = engine.register_family(scenario_forge::Family::RegionalBlackout, &params);
        let standard = toolkit::scenarios::standard_world();
        assert!(
            Arc::ptr_eq(&fleet[0].scenario.world, &standard),
            "engine fleet and case studies share one world generation"
        );
        // The per-engine stats hook still reads deterministically even
        // though the global cache may already have been warm.
        assert_eq!(engine.world_cache().generations(), 1);
        assert!(engine
            .world_cache()
            .shared()
            .get(&world::WorldConfig::default())
            .is_some());
    }
}
