//! The four agents.
//!
//! Each agent owns its system prompt and task tag, serializes a typed
//! request into the prompt payload, and parses the model's *text*
//! completion back into the protocol type — retrying with feedback when
//! the output does not parse (real LLMs emit malformed JSON sometimes;
//! `llm::FaultyModel` simulates that in tests).

use llm::protocol::*;
use llm::{LanguageModel, LlmError, Prompt};
use registry::Registry;

/// Shared agent settings.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// How many times to re-prompt after a malformed completion.
    pub max_retries: usize,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig { max_retries: 2 }
    }
}

/// Errors an agent can surface.
#[derive(Debug)]
pub enum AgentError {
    /// The model itself failed (unknown task, bad payload, transport).
    Model(LlmError),
    /// The model kept returning unparseable output.
    Unparseable { agent: &'static str, attempts: usize, last_error: String },
}

impl std::fmt::Display for AgentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgentError::Model(e) => write!(f, "model error: {e}"),
            AgentError::Unparseable { agent, attempts, last_error } => write!(
                f,
                "{agent} got unparseable output after {attempts} attempt(s): {last_error}"
            ),
        }
    }
}

impl std::error::Error for AgentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AgentError::Model(e) => Some(e),
            AgentError::Unparseable { .. } => None,
        }
    }
}

impl From<LlmError> for AgentError {
    fn from(e: LlmError) -> Self {
        AgentError::Model(e)
    }
}

/// Shared prompt/parse/retry loop.
fn run_task<Req: serde::Serialize, Resp: serde::de::DeserializeOwned>(
    model: &dyn LanguageModel,
    config: &AgentConfig,
    agent: &'static str,
    system: &str,
    task: &str,
    request: &Req,
) -> Result<Resp, AgentError> {
    let mut payload = serde_json::to_value(request).expect("requests serialize");
    let mut last_error = String::new();
    for attempt in 0..=config.max_retries {
        let completion = model.complete(&Prompt::new(system, task, payload.clone()))?;
        match serde_json::from_str::<Resp>(&completion.text) {
            Ok(parsed) => return Ok(parsed),
            Err(e) => {
                last_error = e.to_string();
                // Re-prompt with feedback, exactly like a real agent loop.
                if let serde_json::Value::Object(map) = &mut payload {
                    map.insert(
                        "repair_feedback".to_string(),
                        serde_json::json!(format!(
                            "attempt {} returned invalid JSON: {last_error}",
                            attempt + 1
                        )),
                    );
                }
            }
        }
    }
    Err(AgentError::Unparseable {
        agent,
        attempts: config.max_retries + 1,
        last_error,
    })
}

/// Problem analysis & decomposition.
pub struct QueryMind<'m> {
    model: &'m dyn LanguageModel,
    config: AgentConfig,
}

impl<'m> QueryMind<'m> {
    pub fn new(model: &'m dyn LanguageModel, config: AgentConfig) -> Self {
        QueryMind { model, config }
    }

    /// System prompt (kept verbatim in transcripts).
    pub const SYSTEM: &'static str =
        "You are QueryMind, an Internet measurement expert. Break the user's query into \
         structured sub-problems with dependencies, analyze data/technical/methodological \
         constraints early, and define explicit success criteria so downstream agents \
         neither under- nor over-analyze.";

    pub fn run(
        &self,
        query: &str,
        context: &QueryContext,
        registry: &Registry,
    ) -> Result<Decomposition, AgentError> {
        let request = DecomposeRequest {
            query: query.to_string(),
            context: context.clone(),
            registry: registry.clone(),
        };
        run_task(
            self.model,
            &self.config,
            "QueryMind",
            Self::SYSTEM,
            "querymind.decompose",
            &request,
        )
    }
}

/// Solution space exploration & design.
pub struct WorkflowScout<'m> {
    model: &'m dyn LanguageModel,
    config: AgentConfig,
}

impl<'m> WorkflowScout<'m> {
    pub fn new(model: &'m dyn LanguageModel, config: AgentConfig) -> Self {
        WorkflowScout { model, config }
    }

    pub const SYSTEM: &'static str =
        "You are WorkflowScout, a measurement solution architect. Explore the registry for \
         function combinations that solve each sub-problem; scale exploration to problem \
         complexity; compare trade-offs in data requirements, cost and reliability; and \
         avoid over-engineering — prefer the smallest architecture that meets the success \
         criteria.";

    pub fn run(
        &self,
        decomposition: &Decomposition,
        registry: &Registry,
        variant: u64,
    ) -> Result<ArchitecturePlan, AgentError> {
        let request = ExploreRequest {
            decomposition: decomposition.clone(),
            registry: registry.clone(),
            variant,
        };
        run_task(
            self.model,
            &self.config,
            "WorkflowScout",
            Self::SYSTEM,
            "workflowscout.explore",
            &request,
        )
    }
}

/// Solution implementation.
pub struct SolutionWeaver<'m> {
    model: &'m dyn LanguageModel,
    config: AgentConfig,
}

impl<'m> SolutionWeaver<'m> {
    pub fn new(model: &'m dyn LanguageModel, config: AgentConfig) -> Self {
        SolutionWeaver { model, config }
    }

    pub const SYSTEM: &'static str =
        "You are SolutionWeaver, a measurement integration engineer. Convert the chosen \
         architecture into an executable workflow: translate data formats between \
         heterogeneous tools, and weave quality assurance (consistency verification, \
         sanity checks, uncertainty quantification) into the implementation rather than \
         bolting it on afterwards.";

    pub fn run(
        &self,
        decomposition: &Decomposition,
        architecture: &ArchitecturePlan,
        registry: &Registry,
        feedback: Vec<String>,
    ) -> Result<ImplementationPlan, AgentError> {
        let request = ImplementRequest {
            decomposition: decomposition.clone(),
            architecture: architecture.clone(),
            registry: registry.clone(),
            feedback,
        };
        run_task(
            self.model,
            &self.config,
            "SolutionWeaver",
            Self::SYSTEM,
            "solutionweaver.implement",
            &request,
        )
    }
}

/// Systematic registry evolution.
pub struct RegistryCurator<'m> {
    model: &'m dyn LanguageModel,
    config: AgentConfig,
}

impl<'m> RegistryCurator<'m> {
    pub fn new(model: &'m dyn LanguageModel, config: AgentConfig) -> Self {
        RegistryCurator { model, config }
    }

    pub const SYSTEM: &'static str =
        "You are RegistryCurator. Mine successful workflows for reusable patterns, but be \
         validation-first: only capabilities that demonstrated accuracy and utility across \
         multiple uses merit registry inclusion; reject the rest with reasons to prevent \
         registry bloat.";

    pub fn run(
        &self,
        corpus: &[WorkflowSummary],
        registry: &Registry,
        min_uses: usize,
    ) -> Result<CurationProposal, AgentError> {
        let request = CurateRequest {
            corpus: corpus.to_vec(),
            registry: registry.clone(),
            min_uses,
        };
        run_task(
            self.model,
            &self.config,
            "RegistryCurator",
            Self::SYSTEM,
            "registrycurator.curate",
            &request,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm::{DeterministicExpertModel, FaultyModel, ScriptedModel};
    use registry::{CapabilityEntry, DataFormat, Param};

    fn mini_registry() -> Registry {
        let mut r = Registry::new();
        r.register(CapabilityEntry::new(
            "xaminer.event_impact",
            "xaminer",
            "processes failure events into a country impact table",
            vec![Param::required("event", DataFormat::FailureEventSpec)],
            DataFormat::CountryImpactTable,
        ))
        .unwrap();
        r.register(CapabilityEntry::new(
            "util.compile_disasters",
            "util",
            "compiles disaster specs into failure events",
            vec![
                Param::required("disasters", DataFormat::DisasterSpecs),
                Param::required("failure_probability", DataFormat::Scalar),
            ],
            DataFormat::FailureEventSpec,
        ))
        .unwrap();
        r
    }

    fn context() -> QueryContext {
        QueryContext {
            cable_names: vec!["SeaMeWe-5".into()],
            now: 864_000,
            horizon_days: 10,
        }
    }

    #[test]
    fn querymind_parses_model_output() {
        let model = DeterministicExpertModel::new();
        let qm = QueryMind::new(&model, AgentConfig::default());
        let d = qm
            .run(
                "Identify the impact of severe earthquakes globally assuming a 10% infra \
                 failure probability",
                &context(),
                &mini_registry(),
            )
            .unwrap();
        assert_eq!(d.intent, Intent::DisasterImpact);
    }

    #[test]
    fn agents_recover_from_malformed_output() {
        // One corrupted completion, then a good one: the retry loop heals it.
        let model = FaultyModel::new(DeterministicExpertModel::new(), 1);
        let qm = QueryMind::new(&model, AgentConfig { max_retries: 2 });
        let d = qm.run("impact of earthquakes at 10%", &context(), &mini_registry());
        assert!(d.is_ok(), "{:?}", d.err().map(|e| e.to_string()));
    }

    #[test]
    fn agents_give_up_after_retries() {
        // Corrupt more completions than the retry budget allows.
        let model = FaultyModel::new(DeterministicExpertModel::new(), 10);
        let qm = QueryMind::new(&model, AgentConfig { max_retries: 1 });
        let err = qm.run("impact of earthquakes", &context(), &mini_registry()).unwrap_err();
        match err {
            AgentError::Unparseable { agent, attempts, .. } => {
                assert_eq!(agent, "QueryMind");
                assert_eq!(attempts, 2);
            }
            other => panic!("expected Unparseable, got {other}"),
        }
    }

    #[test]
    fn scripted_model_drives_scout() {
        // The scout parses whatever the model returns — here a canned plan.
        let plan = ArchitecturePlan {
            steps: vec![],
            outputs: vec![],
            alternatives_considered: 1,
            frameworks: vec![],
            rationale: "canned".into(),
        };
        let canned = serde_json::to_string(&plan).unwrap();
        let model = ScriptedModel::new(vec![("workflowscout.explore", canned.as_str())]);
        let scout = WorkflowScout::new(&model, AgentConfig::default());
        let d = llm::expert::decompose(&DecomposeRequest {
            query: "impact of earthquakes at 10%".into(),
            context: context(),
            registry: mini_registry(),
        });
        let got = scout.run(&d, &mini_registry(), 0).unwrap();
        assert_eq!(got.rationale, "canned");
    }

    #[test]
    fn curator_runs_over_prompts() {
        let model = DeterministicExpertModel::new();
        let curator = RegistryCurator::new(&model, AgentConfig::default());
        let corpus = vec![
            WorkflowSummary {
                id: "w1".into(),
                functions: vec!["util.compile_disasters".into(), "xaminer.event_impact".into()],
                success: true,
            },
            WorkflowSummary {
                id: "w2".into(),
                functions: vec!["util.compile_disasters".into(), "xaminer.event_impact".into()],
                success: true,
            },
        ];
        let proposal = curator.run(&corpus, &mini_registry(), 2).unwrap();
        assert_eq!(proposal.composites.len(), 1);
    }
}
