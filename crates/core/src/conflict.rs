//! Conflicting-tool-outputs resolution — §5 of the paper: "BGP routing
//! tables might show one path while traceroute reveals actual packet
//! travel through different routes". This module implements the proposed
//! mitigation: detect disagreements between evidence sources and resolve
//! them by reliability-weighted voting, reporting a confidence score and
//! an explanation instead of silently picking one side.

use serde::{Deserialize, Serialize};

/// One claim from one measurement source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Claim {
    /// Which tool/framework produced the claim.
    pub source: String,
    /// Historical reliability of that source, `[0, 1]`.
    pub reliability: f64,
    /// The claimed value (free-form key — e.g. a cable name, a path hash).
    pub verdict: String,
}

/// The outcome of resolving a set of claims.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resolution {
    /// The winning verdict.
    pub verdict: String,
    /// Weighted support for the winner, `(0, 1]`.
    pub confidence: f64,
    /// Whether any source disagreed with the winner.
    pub conflicted: bool,
    /// Dissenting sources and their verdicts.
    pub dissent: Vec<(String, String)>,
    /// Human-readable explanation of the decision.
    pub explanation: String,
}

/// Resolves claims by reliability-weighted voting.
///
/// Returns `None` for an empty claim set — "no evidence" must stay
/// distinguishable from "confident verdict".
pub fn resolve(claims: &[Claim]) -> Option<Resolution> {
    if claims.is_empty() {
        return None;
    }
    // Aggregate weight per verdict, in deterministic order.
    let mut weights: Vec<(String, f64)> = Vec::new();
    for c in claims {
        let w = c.reliability.clamp(0.0, 1.0);
        match weights.iter_mut().find(|(v, _)| v == &c.verdict) {
            Some((_, total)) => *total += w,
            None => weights.push((c.verdict.clone(), w)),
        }
    }
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    if total <= 0.0 {
        return None;
    }
    weights.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let (winner, winner_weight) = weights[0].clone();

    let dissent: Vec<(String, String)> = claims
        .iter()
        .filter(|c| c.verdict != winner)
        .map(|c| (c.source.clone(), c.verdict.clone()))
        .collect();
    let conflicted = !dissent.is_empty();

    let explanation = if conflicted {
        format!(
            "sources disagree; '{winner}' wins with {:.0}% of reliability-weighted support \
             ({} dissenting source(s))",
            100.0 * winner_weight / total,
            dissent.len()
        )
    } else {
        format!("all {} source(s) agree on '{winner}'", claims.len())
    };

    Some(Resolution {
        verdict: winner,
        confidence: winner_weight / total,
        conflicted,
        dissent,
        explanation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn claim(source: &str, reliability: f64, verdict: &str) -> Claim {
        Claim { source: source.into(), reliability, verdict: verdict.into() }
    }

    #[test]
    fn unanimous_claims_resolve_with_full_confidence() {
        let r = resolve(&[
            claim("bgp", 0.9, "SeaMeWe-5"),
            claim("traceroute", 0.8, "SeaMeWe-5"),
        ])
        .unwrap();
        assert_eq!(r.verdict, "SeaMeWe-5");
        assert!((r.confidence - 1.0).abs() < 1e-12);
        assert!(!r.conflicted);
        assert!(r.dissent.is_empty());
    }

    #[test]
    fn reliability_weights_break_ties() {
        // Two sources claim A (total 0.5+0.4=0.9), one reliable source
        // claims B (0.95): A still wins on weight, but barely.
        let r = resolve(&[
            claim("s1", 0.5, "A"),
            claim("s2", 0.4, "A"),
            claim("s3", 0.95, "B"),
        ])
        .unwrap();
        assert_eq!(r.verdict, "B");
        assert!(r.conflicted);
        assert_eq!(r.dissent.len(), 2);
        assert!(r.confidence > 0.5);
    }

    #[test]
    fn empty_and_zero_weight_claims_return_none() {
        assert!(resolve(&[]).is_none());
        assert!(resolve(&[claim("s", 0.0, "A")]).is_none());
    }

    #[test]
    fn deterministic_tie_break_on_equal_weight() {
        let r1 = resolve(&[claim("s1", 0.5, "B"), claim("s2", 0.5, "A")]).unwrap();
        let r2 = resolve(&[claim("s2", 0.5, "A"), claim("s1", 0.5, "B")]).unwrap();
        assert_eq!(r1.verdict, r2.verdict, "ties must resolve deterministically");
        assert_eq!(r1.verdict, "A", "lexicographic tie-break");
    }

    #[test]
    fn explanation_mentions_dissent() {
        let r = resolve(&[claim("bgp", 0.9, "X"), claim("tr", 0.3, "Y")]).unwrap();
        assert!(r.explanation.contains("disagree"));
    }
}
