//! Ensemble generation — the confidence mechanism the paper proposes in
//! §5 (Trust & Verification): compare multiple independent workflow
//! generations and derive a consensus score from their agreement.
//!
//! Variants differ through the planner's deterministic score jitter, so
//! the ensemble explores genuinely different (but always valid)
//! architectures. Generation runs in parallel with std scoped
//! threads.

use std::collections::BTreeMap;

use llm::protocol::QueryContext;

use crate::engine::Session;
use crate::orchestrator::{ArachNet, GeneratedSolution, PipelineError};

/// Anything that can produce variant-seeded solutions — the legacy
/// [`ArachNet`] facade or a serving-engine [`Session`] (so ensemble
/// members run through engine sessions and share the epoch snapshot).
pub trait SolutionSource: Sync {
    /// Generates the `variant`-seeded solution for a query.
    fn generate_variant(
        &self,
        query: &str,
        context: &QueryContext,
        variant: u64,
    ) -> Result<GeneratedSolution, PipelineError>;
}

impl SolutionSource for ArachNet<'_> {
    fn generate_variant(
        &self,
        query: &str,
        context: &QueryContext,
        variant: u64,
    ) -> Result<GeneratedSolution, PipelineError> {
        ArachNet::generate_variant(self, query, context, variant)
    }
}

impl SolutionSource for Session {
    fn generate_variant(
        &self,
        query: &str,
        context: &QueryContext,
        variant: u64,
    ) -> Result<GeneratedSolution, PipelineError> {
        Session::generate_variant(self, query, context, variant)
    }
}

/// Per-function agreement across the ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionAgreement {
    pub function: String,
    /// Fraction of ensemble members using it.
    pub agreement: f64,
}

/// The ensemble result.
#[derive(Debug)]
pub struct EnsembleReport {
    pub solutions: Vec<GeneratedSolution>,
    /// Mean pairwise Jaccard similarity of function sets, `[0, 1]`.
    pub consensus: f64,
    /// Functions sorted by descending agreement.
    pub agreements: Vec<FunctionAgreement>,
    /// Index of the member closest to the consensus (medoid).
    pub representative: usize,
}

impl EnsembleReport {
    /// The representative solution.
    pub fn best(&self) -> &GeneratedSolution {
        &self.solutions[self.representative]
    }

    /// Functions every member agrees on.
    pub fn unanimous_functions(&self) -> Vec<&str> {
        self.agreements
            .iter()
            .filter(|a| a.agreement >= 1.0)
            .map(|a| a.function.as_str())
            .collect()
    }
}

/// Runs `n` independent generations and scores their consensus. The
/// source may be the legacy [`ArachNet`] facade or an engine [`Session`].
pub fn generate_ensemble<S: SolutionSource + ?Sized>(
    system: &S,
    query: &str,
    context: &QueryContext,
    n: usize,
) -> Result<EnsembleReport, PipelineError> {
    if n == 0 {
        return Err(PipelineError::Invalid(
            "ensemble needs at least one member".to_string(),
        ));
    }

    // Parallel generation: each variant is independent and deterministic.
    let mut results: Vec<Option<Result<GeneratedSolution, PipelineError>>> =
        (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (i, slot) in results.iter_mut().enumerate() {
            scope.spawn(move || {
                *slot = Some(system.generate_variant(query, context, i as u64));
            });
        }
    });

    let mut solutions = Vec::with_capacity(n);
    for r in results {
        solutions.push(r.expect("slot filled")?);
    }

    // Function sets per member.
    let sets: Vec<Vec<String>> = solutions
        .iter()
        .map(|s| {
            let mut fns: Vec<String> =
                s.workflow.steps.iter().map(|st| st.function.0.clone()).collect();
            fns.sort();
            fns.dedup();
            fns
        })
        .collect();

    // Mean pairwise Jaccard.
    let mut pair_sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..sets.len() {
        for j in (i + 1)..sets.len() {
            pair_sum += jaccard(&sets[i], &sets[j]);
            pairs += 1;
        }
    }
    let consensus = if pairs == 0 { 1.0 } else { pair_sum / pairs as f64 };

    // Per-function agreement.
    let mut counts: BTreeMap<&String, usize> = BTreeMap::new();
    for set in &sets {
        for f in set {
            *counts.entry(f).or_default() += 1;
        }
    }
    let mut agreements: Vec<FunctionAgreement> = counts
        .into_iter()
        .map(|(f, c)| FunctionAgreement {
            function: f.clone(),
            agreement: c as f64 / sets.len() as f64,
        })
        .collect();
    agreements.sort_by(|a, b| {
        b.agreement.total_cmp(&a.agreement).then(a.function.cmp(&b.function))
    });

    // Medoid: the member with the highest mean similarity to the others.
    let representative = (0..sets.len())
        .max_by(|&i, &j| {
            let si: f64 = (0..sets.len()).filter(|&k| k != i).map(|k| jaccard(&sets[i], &sets[k])).sum();
            let sj: f64 = (0..sets.len()).filter(|&k| k != j).map(|k| jaccard(&sets[j], &sets[k])).sum();
            si.total_cmp(&sj).then(j.cmp(&i)) // ties: lower index
        })
        .unwrap_or(0);

    Ok(EnsembleReport { solutions, consensus, agreements, representative })
}

/// Jaccard similarity of two sorted, deduplicated sets.
pub fn jaccard(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.iter().filter(|x| b.contains(x)).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm::DeterministicExpertModel;
    use registry::{CapabilityEntry, DataFormat, Param, Registry};

    fn mini_registry() -> Registry {
        let mut r = Registry::new();
        r.register(CapabilityEntry::new(
            "util.compile_disasters",
            "util",
            "compiles disaster specs into failure events",
            vec![
                Param::required("disasters", DataFormat::DisasterSpecs),
                Param::required("failure_probability", DataFormat::Scalar),
            ],
            DataFormat::FailureEventSpec,
        ))
        .unwrap();
        r.register(CapabilityEntry::new(
            "xaminer.event_impact",
            "xaminer",
            "processes failure events into a country impact table",
            vec![Param::required("event", DataFormat::FailureEventSpec)],
            DataFormat::CountryImpactTable,
        ))
        .unwrap();
        r
    }

    fn context() -> QueryContext {
        QueryContext { cable_names: vec![], now: 864_000, horizon_days: 10 }
    }

    #[test]
    fn ensemble_of_identical_plans_has_full_consensus() {
        let model = DeterministicExpertModel::new();
        let system = ArachNet::new(&model, mini_registry());
        let report = generate_ensemble(
            &system,
            "Identify the impact of severe earthquakes globally assuming a 10% infra \
             failure probability",
            &context(),
            4,
        )
        .unwrap();
        assert_eq!(report.solutions.len(), 4);
        // Only one valid architecture exists in the mini registry, so the
        // ensemble must agree perfectly.
        assert!((report.consensus - 1.0).abs() < 1e-9);
        assert_eq!(
            report.unanimous_functions(),
            vec!["util.compile_disasters", "xaminer.event_impact"]
        );
        assert!(report.representative < 4);
    }

    #[test]
    fn jaccard_properties() {
        let a = vec!["x".to_string(), "y".to_string()];
        let b = vec!["y".to_string(), "z".to_string()];
        assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
        assert!((jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard(&a, &[]), 0.0);
        assert_eq!(jaccard(&[], &[]), 1.0);
    }

    #[test]
    fn empty_ensemble_is_an_invalid_request() {
        let model = DeterministicExpertModel::new();
        let system = ArachNet::new(&model, mini_registry());
        let err = generate_ensemble(
            &system,
            "Identify the impact of severe earthquakes globally assuming a 10% infra \
             failure probability",
            &context(),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::Invalid(_)), "got {err}");
    }

    #[test]
    fn ensemble_runs_through_engine_sessions() {
        use crate::engine::Engine;
        use std::sync::Arc;

        let engine =
            Engine::new(Arc::new(DeterministicExpertModel::new()), mini_registry());
        engine.register_scenario("cs2", toolkit::scenarios::cs2_scenario());
        let session = engine.session("cs2").unwrap();
        let query = "Identify the impact of severe earthquakes globally assuming a 10% \
                     infra failure probability";
        let report = generate_ensemble(&session, query, &context(), 4).unwrap();
        assert_eq!(report.solutions.len(), 4);
        assert!((report.consensus - 1.0).abs() < 1e-9);

        // Identical to the legacy facade over the same registry.
        let model = DeterministicExpertModel::new();
        let system = ArachNet::new(&model, mini_registry());
        let legacy = generate_ensemble(&system, query, &context(), 4).unwrap();
        assert_eq!(
            report.best().source_code,
            legacy.best().source_code,
            "session ensembles mirror the facade"
        );
    }

    #[test]
    fn single_member_ensemble() {
        let model = DeterministicExpertModel::new();
        let system = ArachNet::new(&model, mini_registry());
        let report = generate_ensemble(
            &system,
            "Identify the impact of severe hurricanes globally assuming a 10% infra \
             failure probability",
            &context(),
            1,
        )
        .unwrap();
        assert_eq!(report.solutions.len(), 1);
        assert_eq!(report.consensus, 1.0);
    }
}
