//! The coordinated pipeline: QueryMind → WorkflowScout → SolutionWeaver,
//! with RegistryCurator evolving the registry between runs.

use std::collections::BTreeMap;

use llm::protocol::*;
use llm::LanguageModel;
use registry::{CapabilityEntry, DataFormat, FunctionId, Implementation, Registry};
use workflow::{check, to_source, Binding, Step, TypedValue, Workflow};

use crate::agents::{
    AgentConfig, AgentError, QueryMind, RegistryCurator, SolutionWeaver, WorkflowScout,
};

/// An optional expert hook rewriting one intermediate artifact.
pub type AdjustHook<T> = Option<Box<dyn Fn(T) -> T + Send + Sync>>;

/// An optional expert hook reviewing the final workflow.
pub type ReviewHook = Option<Box<dyn Fn(&Workflow) -> Vec<String> + Send + Sync>>;

/// Expert-mode hooks: specialists can review and adjust outputs between
/// agents before the pipeline proceeds (§3, "expert mode").
#[derive(Default)]
pub struct ExpertHooks {
    /// Adjust scope/constraints after QueryMind.
    pub adjust_decomposition: AdjustHook<Decomposition>,
    /// Steer the architecture after WorkflowScout.
    pub adjust_architecture: AdjustHook<ArchitecturePlan>,
    /// Review the final workflow; returned notes are attached to the
    /// solution.
    pub review_workflow: ReviewHook,
}

/// Pipeline failures.
#[derive(Debug)]
pub enum PipelineError {
    Agent(AgentError),
    /// The generated workflow failed validation even after repair rounds.
    Validation { errors: Vec<String>, repair_attempts: usize },
    /// The request itself was invalid (empty ensemble, unknown scenario
    /// key, …) — a caller error, not an agent failure.
    Invalid(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Agent(e) => write!(f, "agent failure: {e}"),
            PipelineError::Validation { errors, repair_attempts } => write!(
                f,
                "workflow failed validation after {repair_attempts} repair attempt(s): {}",
                errors.join("; ")
            ),
            PipelineError::Invalid(message) => write!(f, "invalid request: {message}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Agent(e) => Some(e),
            PipelineError::Validation { .. } | PipelineError::Invalid(_) => None,
        }
    }
}

impl From<AgentError> for PipelineError {
    fn from(e: AgentError) -> Self {
        PipelineError::Agent(e)
    }
}

/// A complete generated solution.
#[derive(Debug, Clone)]
pub struct GeneratedSolution {
    pub query: String,
    pub decomposition: Decomposition,
    pub architecture: ArchitecturePlan,
    /// The executable workflow program.
    pub workflow: Workflow,
    /// Rendered Python-like source (the artifact users read and run).
    pub source_code: String,
    /// Non-empty source lines — the paper's LoC metric.
    pub loc: usize,
    pub frameworks: Vec<String>,
    pub qa_measures: Vec<String>,
    /// Validation-repair rounds that were needed.
    pub repair_attempts: usize,
    /// Expert-mode review notes, if any.
    pub expert_notes: Vec<String>,
}

impl GeneratedSolution {
    /// Query-argument values for executing the workflow, resolved by
    /// QueryMind during decomposition.
    pub fn query_args(&self) -> BTreeMap<String, TypedValue> {
        self.decomposition
            .provided_args
            .iter()
            .map(|(name, a)| (name.clone(), TypedValue::new(a.format, a.value.clone())))
            .collect()
    }

    /// Summary for the curator corpus.
    pub fn summary(&self, success: bool) -> WorkflowSummary {
        WorkflowSummary {
            id: self.workflow.id.clone(),
            functions: self.workflow.steps.iter().map(|s| s.function.0.clone()).collect(),
            success,
        }
    }
}

/// Result of a curation pass.
#[derive(Debug, Clone, Default)]
pub struct CurationOutcome {
    /// Composites added to the registry.
    pub added: Vec<FunctionId>,
    /// Patterns rejected, with reasons.
    pub rejected: Vec<(String, String)>,
}

/// The ArachNet system: a model, a registry, and the coordinated pipeline.
pub struct ArachNet<'m> {
    model: &'m dyn LanguageModel,
    registry: Registry,
    config: AgentConfig,
    /// How many repair rounds SolutionWeaver gets when validation fails.
    max_repairs: usize,
}

impl<'m> ArachNet<'m> {
    /// Builds the system over a model and an initial registry.
    pub fn new(model: &'m dyn LanguageModel, registry: Registry) -> Self {
        ArachNet { model, registry, config: AgentConfig::default(), max_repairs: 2 }
    }

    /// Current registry (evolves through curation).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Standard mode: fully automated.
    pub fn generate(
        &self,
        query: &str,
        context: &QueryContext,
    ) -> Result<GeneratedSolution, PipelineError> {
        self.generate_inner(query, context, 0, &ExpertHooks::default())
    }

    /// Expert mode: hooks run between stages.
    pub fn generate_expert(
        &self,
        query: &str,
        context: &QueryContext,
        hooks: &ExpertHooks,
    ) -> Result<GeneratedSolution, PipelineError> {
        self.generate_inner(query, context, 0, hooks)
    }

    /// Variant-seeded generation (used by the ensemble machinery).
    pub fn generate_variant(
        &self,
        query: &str,
        context: &QueryContext,
        variant: u64,
    ) -> Result<GeneratedSolution, PipelineError> {
        self.generate_inner(query, context, variant, &ExpertHooks::default())
    }

    fn generate_inner(
        &self,
        query: &str,
        context: &QueryContext,
        variant: u64,
        hooks: &ExpertHooks,
    ) -> Result<GeneratedSolution, PipelineError> {
        run_pipeline(
            self.model,
            &self.config,
            self.max_repairs,
            &self.registry,
            query,
            context,
            variant,
            hooks,
        )
    }

    /// Stage 4: RegistryCurator. Validated composites are registered;
    /// the registry grows organically.
    pub fn curate(
        &mut self,
        corpus: &[WorkflowSummary],
        min_uses: usize,
    ) -> Result<CurationOutcome, PipelineError> {
        run_curation(self.model, &self.config, &mut self.registry, corpus, min_uses)
    }
}

/// The three-agent generation pipeline over an explicit registry snapshot.
///
/// This is the shared core behind [`ArachNet::generate`] and the serving
/// engine's sessions: the registry is read-only for the whole run, so any
/// number of pipelines can execute concurrently against one shared
/// (epoch) snapshot.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_pipeline(
    model: &dyn LanguageModel,
    config: &AgentConfig,
    max_repairs: usize,
    registry: &Registry,
    query: &str,
    context: &QueryContext,
    variant: u64,
    hooks: &ExpertHooks,
) -> Result<GeneratedSolution, PipelineError> {
    // Stage 1: QueryMind.
    let querymind = QueryMind::new(model, config.clone());
    let mut decomposition = querymind.run(query, context, registry)?;
    if let Some(hook) = &hooks.adjust_decomposition {
        decomposition = hook(decomposition);
    }

    // Stage 2: WorkflowScout.
    let scout = WorkflowScout::new(model, config.clone());
    let mut architecture = scout.run(&decomposition, registry, variant)?;
    if let Some(hook) = &hooks.adjust_architecture {
        architecture = hook(architecture);
    }

    // Stage 3: SolutionWeaver, with a validation-repair loop.
    let weaver = SolutionWeaver::new(model, config.clone());
    let mut feedback: Vec<String> = Vec::new();
    let mut repair_attempts = 0usize;
    let (workflow, implementation) = loop {
        let implementation =
            weaver.run(&decomposition, &architecture, registry, feedback.clone())?;
        let wf = to_workflow(query, &decomposition, &implementation, registry);
        let errors = check(&wf, registry);
        if errors.is_empty() {
            break (wf, implementation);
        }
        repair_attempts += 1;
        if repair_attempts > max_repairs {
            return Err(PipelineError::Validation {
                errors: errors.iter().map(|e| e.to_string()).collect(),
                repair_attempts,
            });
        }
        feedback = errors.iter().map(|e| e.to_string()).collect();
    };

    let source_code = to_source(&workflow, registry);
    let loc = workflow::loc(&source_code);
    let frameworks = workflow.frameworks_used(registry);
    let expert_notes = hooks
        .review_workflow
        .as_ref()
        .map(|hook| hook(&workflow))
        .unwrap_or_default();

    Ok(GeneratedSolution {
        query: query.to_string(),
        decomposition,
        architecture,
        workflow,
        source_code,
        loc,
        frameworks,
        qa_measures: implementation.qa_measures,
        repair_attempts,
        expert_notes,
    })
}

/// Runs RegistryCurator against `registry` and registers the validated
/// composites — the shared core behind [`ArachNet::curate`] and the
/// engine's epoch-publishing curation.
pub(crate) fn run_curation(
    model: &dyn LanguageModel,
    config: &AgentConfig,
    registry: &mut Registry,
    corpus: &[WorkflowSummary],
    min_uses: usize,
) -> Result<CurationOutcome, PipelineError> {
    let curator = RegistryCurator::new(model, config.clone());
    let proposal = curator.run(corpus, registry, min_uses)?;

    let mut outcome = CurationOutcome {
        rejected: proposal.rejected.clone(),
        ..Default::default()
    };
    for composite in proposal.composites {
        let sequence: Vec<FunctionId> =
            composite.sequence.iter().map(|s| FunctionId::from(s.as_str())).collect();
        // Derive the composite's signature from its parts: the inputs
        // of the whole chain that are not satisfied internally, and the
        // final function's output.
        let Some(last) = sequence.last().and_then(|id| registry.get(id)) else {
            outcome
                .rejected
                .push((composite.id.clone(), "sequence references unknown functions".into()));
            continue;
        };
        let output = last.output;
        let mut inputs: Vec<registry::Param> = Vec::new();
        let mut produced: Vec<DataFormat> = Vec::new();
        for fid in &sequence {
            let entry = registry.get(fid).expect("validated in curate()");
            for p in entry.required_inputs() {
                let satisfied_internally =
                    produced.iter().any(|f| f.compatible_with(p.format));
                let already_declared = inputs.iter().any(|q| q.name == p.name);
                if !satisfied_internally && !already_declared {
                    inputs.push(p.clone());
                }
            }
            produced.push(entry.output);
        }
        let entry = CapabilityEntry {
            id: FunctionId::from(composite.id.as_str()),
            framework: "composite".to_string(),
            capability: composite.capability.clone(),
            inputs,
            output,
            constraints: vec![format!(
                "mined from {} successful workflow(s)",
                composite.observed_uses
            )],
            tags: vec!["composite".into(), "curated".into()],
            cost: registry::CostClass::Moderate,
            reliability: 0.85,
            implementation: Implementation::Composite { sequence },
        };
        match registry.register(entry) {
            Ok(()) => outcome.added.push(FunctionId::from(composite.id.as_str())),
            Err(e) => outcome.rejected.push((composite.id.clone(), e.to_string())),
        }
    }
    Ok(outcome)
}

/// Converts an implementation plan into the executable workflow IR.
/// Steps whose registry entry is tagged `non-critical` (enrichment
/// detectors) are marked accordingly, so their failures degrade the run
/// instead of failing it.
fn to_workflow(
    query: &str,
    decomposition: &Decomposition,
    plan: &ImplementationPlan,
    registry: &Registry,
) -> Workflow {
    let mut wf = Workflow::new(&plan.workflow_id, query);
    for planned in &plan.steps {
        let mut step = Step::new(&planned.id, &planned.function).because(&planned.rationale);
        let non_critical = registry
            .get(&step.function)
            .is_some_and(|entry| entry.tags.iter().any(|t| t == "non-critical"));
        if non_critical {
            step = step.non_critical();
        }
        for (param, binding) in &planned.bindings {
            let b = match binding {
                PlannedBinding::FromStep(sid) => Binding::Step(workflow::StepId(sid.clone())),
                PlannedBinding::FromArg(name) => {
                    let format = decomposition
                        .provided_args
                        .get(name)
                        .map(|a| a.format)
                        .unwrap_or(DataFormat::Any);
                    Binding::QueryArg { name: name.clone(), format }
                }
                PlannedBinding::Const { format, value } => {
                    Binding::Const { format: *format, value: value.clone() }
                }
            };
            step = step.bind(param, b);
        }
        wf.push(step);
    }
    for out in &plan.outputs {
        wf = wf.with_output(out);
    }
    wf
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm::DeterministicExpertModel;
    use registry::Param;

    fn mini_registry() -> Registry {
        let mut r = Registry::new();
        r.register(CapabilityEntry::new(
            "util.compile_disasters",
            "util",
            "compiles disaster specs into failure events",
            vec![
                Param::required("disasters", DataFormat::DisasterSpecs),
                Param::required("failure_probability", DataFormat::Scalar),
            ],
            DataFormat::FailureEventSpec,
        ))
        .unwrap();
        r.register(CapabilityEntry::new(
            "xaminer.event_impact",
            "xaminer",
            "processes failure events into a country impact table",
            vec![Param::required("event", DataFormat::FailureEventSpec)],
            DataFormat::CountryImpactTable,
        ))
        .unwrap();
        r.register(CapabilityEntry::new(
            "qa.verify_output",
            "qa",
            "verifies a final result",
            vec![Param::required("value", DataFormat::Any)],
            DataFormat::QaReport,
        ))
        .unwrap();
        r
    }

    fn context() -> QueryContext {
        QueryContext { cable_names: vec![], now: 864_000, horizon_days: 10 }
    }

    const CS2_QUERY: &str = "Identify the impact of severe earthquakes and hurricanes \
                             globally assuming a 10% infra failure probability";

    #[test]
    fn pipeline_generates_valid_workflow() {
        let model = DeterministicExpertModel::new();
        let system = ArachNet::new(&model, mini_registry());
        let solution = system.generate(CS2_QUERY, &context()).unwrap();
        assert!(check(&solution.workflow, system.registry()).is_empty());
        assert!(solution.loc > 50, "loc {}", solution.loc);
        assert_eq!(solution.repair_attempts, 0);
        // QA step woven in.
        assert!(solution.workflow.steps.iter().any(|s| s.function.0 == "qa.verify_output"));
        // Restraint: one analysis framework plus plumbing.
        assert!(solution.frameworks.contains(&"xaminer".to_string()));
    }

    #[test]
    fn expert_hooks_adjust_and_review() {
        let model = DeterministicExpertModel::new();
        let system = ArachNet::new(&model, mini_registry());
        let hooks = ExpertHooks {
            adjust_decomposition: Some(Box::new(|mut d: Decomposition| {
                d.constraints.push("expert: restrict to coastal assets".into());
                d
            })),
            adjust_architecture: None,
            review_workflow: Some(Box::new(|wf: &Workflow| {
                vec![format!("reviewed {} steps", wf.steps.len())]
            })),
        };
        let solution = system.generate_expert(CS2_QUERY, &context(), &hooks).unwrap();
        assert!(solution
            .decomposition
            .constraints
            .iter()
            .any(|c| c.contains("expert: restrict")));
        assert_eq!(solution.expert_notes.len(), 1);
    }

    #[test]
    fn curation_grows_registry_and_rejects_duplicates() {
        let model = DeterministicExpertModel::new();
        let mut system = ArachNet::new(&model, mini_registry());
        let solution = system.generate(CS2_QUERY, &context()).unwrap();
        let corpus = vec![solution.summary(true), solution.summary(true)];

        let before = system.registry().len();
        let outcome = system.curate(&corpus, 2).unwrap();
        assert_eq!(outcome.added.len(), 1, "rejected: {:?}", outcome.rejected);
        assert_eq!(system.registry().len(), before + 1);

        // Second pass proposes nothing new.
        let outcome2 = system.curate(&corpus, 2).unwrap();
        assert!(outcome2.added.is_empty());
        assert!(outcome2
            .rejected
            .iter()
            .any(|(_, why)| why.contains("already registered") || why.contains("duplicate")));
    }

    #[test]
    fn composite_signature_is_derived_correctly() {
        let model = DeterministicExpertModel::new();
        let mut system = ArachNet::new(&model, mini_registry());
        let solution = system.generate(CS2_QUERY, &context()).unwrap();
        let corpus = vec![solution.summary(true), solution.summary(true)];
        let outcome = system.curate(&corpus, 2).unwrap();
        let id = &outcome.added[0];
        let entry = system.registry().get(id).unwrap();
        // The composite takes the chain's external inputs and returns the
        // final output.
        assert_eq!(entry.output, DataFormat::CountryImpactTable);
        let input_names: Vec<&str> = entry.inputs.iter().map(|p| p.name.as_str()).collect();
        assert!(input_names.contains(&"disasters"));
        assert!(input_names.contains(&"failure_probability"));
        assert!(!input_names.contains(&"event"), "internally satisfied input must not leak");
    }

    #[test]
    fn generated_workflow_uses_composites_after_curation() {
        let model = DeterministicExpertModel::new();
        let mut system = ArachNet::new(&model, mini_registry());
        let s1 = system.generate(CS2_QUERY, &context()).unwrap();
        let corpus = vec![s1.summary(true), s1.summary(true)];
        system.curate(&corpus, 2).unwrap();

        // Regenerate: the planner can now reach the target through the
        // cheaper composite, shrinking the workflow.
        let s2 = system.generate(CS2_QUERY, &context()).unwrap();
        assert!(
            s2.workflow.steps.len() <= s1.workflow.steps.len(),
            "curated registry should not grow the plan ({} vs {})",
            s2.workflow.steps.len(),
            s1.workflow.steps.len()
        );
    }
}
