//! # arachnet — the four-agent workflow composition pipeline
//!
//! The paper's core contribution (Figure 1): four specialized agents that
//! mirror expert workflow, coordinated over a capability registry.
//!
//! * [`agents::QueryMind`] — problem analysis & decomposition;
//! * [`agents::WorkflowScout`] — solution space exploration & design;
//! * [`agents::SolutionWeaver`] — implementation (typed workflow IR plus
//!   rendered source code);
//! * [`agents::RegistryCurator`] — systematic registry evolution.
//!
//! The [`ArachNet`] orchestrator chains them: by default in **standard**
//! mode (fully automated); in **expert** mode domain specialists review
//! and adjust the intermediate artifacts between stages ([`ExpertHooks`]).
//! [`ensemble`] implements the paper's proposed ensemble-confidence
//! mechanism (§5, Trust & Verification) and [`conflict`] the
//! conflicting-tool-outputs mitigation (§5).
//!
//! For serving many concurrent queries, use the [`engine`] module:
//! [`Engine`] publishes the registry as immutable epochs and hands out
//! [`Session`]s that share per-scenario artifact stores — [`ArachNet`]
//! remains as the thin single-tenant facade over the same pipeline.

pub mod agents;
pub mod conflict;
pub mod engine;
pub mod ensemble;
pub mod orchestrator;

pub use agents::{AgentConfig, AgentError};
pub use engine::{
    Engine, FamilyScenario, RegistrationStats, RegistryEpoch, ScenarioRegistration, Session,
    SessionRun,
};
pub use ensemble::{EnsembleReport, FunctionAgreement, SolutionSource};
pub use orchestrator::{ArachNet, CurationOutcome, ExpertHooks, GeneratedSolution, PipelineError};

// Re-export the resilience surface (fault plans, breakers, run health)
// so chaos drills against the engine need one import.
pub use chaos::{ChaosRuntime, ChaosStats, FaultKind, FaultPlan};
pub use toolkit::{BreakerConfig, ResilienceConfig, ResilientRuntime};
pub use workflow::{RetryPolicy, RunHealth};

// Re-export the observability surface (PR 9): attach a `Recorder` via
// `Engine::with_recorder` / `Session::with_recorder` and read traces,
// events and metrics back out with one import.
pub use telemetry::{
    EventKind, MetricsSnapshot, Recorder, Span, SpanKind, SpanStatus, Trace,
};

// Re-export the protocol so downstream users see one coherent API.
pub use llm::protocol;
pub use llm::{DeterministicExpertModel, LanguageModel};

// Re-export the scenario-forge surface the engine integrates
// ([`Engine::register_family`]) so fleet registration needs one import.
pub use scenario_forge::{Family, FamilyParams, ScenarioBlueprint, SharedWorldCache, WorldCache};
