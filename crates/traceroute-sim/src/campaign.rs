//! Measurement campaigns: repeated traceroutes from probe sets to
//! destination sets over a time window — the shape of data the forensic
//! workflow consumes ("latency from European probes to Asian destinations
//! over the last two weeks").

use net_model::{Ipv4Addr, ProbeId, Region, SimDuration, SimTime, TimeWindow};
use serde::{Deserialize, Serialize};

use crate::rtt::Traceroute;
use crate::TracerouteSimulator;

/// Declarative description of a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Probes to launch from.
    pub probes: Vec<ProbeId>,
    /// Destination addresses.
    pub destinations: Vec<Ipv4Addr>,
    /// Sampling window.
    pub window: TimeWindow,
    /// Interval between samples.
    pub interval: SimDuration,
    /// Paris flow id used for every measurement (keeps paths comparable).
    pub flow_id: u16,
}

impl CampaignSpec {
    /// A convenience builder: all probes of `src_region` towards the given
    /// destinations, sampled every `interval` across `window`.
    pub fn regional(
        world: &world::World,
        src_region: Region,
        destinations: Vec<Ipv4Addr>,
        window: TimeWindow,
        interval: SimDuration,
    ) -> CampaignSpec {
        let probes = world
            .probes
            .iter()
            .filter(|p| p.region == src_region)
            .map(|p| p.id)
            .collect();
        CampaignSpec { probes, destinations, window, interval, flow_id: 0 }
    }

    /// The sample instants, ascending.
    pub fn sample_times(&self) -> Vec<SimTime> {
        assert!(self.interval.as_seconds() > 0, "interval must be positive");
        let mut out = Vec::new();
        let mut t = self.window.start;
        while t < self.window.end {
            out.push(t);
            t = t + self.interval;
        }
        out
    }
}

/// Results of running a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Campaign {
    pub spec: CampaignSpec,
    /// Measurements in (time, probe, dst) order.
    pub measurements: Vec<Traceroute>,
}

impl Campaign {
    /// Runs the campaign.
    pub fn run(sim: &TracerouteSimulator<'_>, spec: CampaignSpec) -> Campaign {
        let mut measurements = Vec::new();
        for t in spec.sample_times() {
            for &probe in &spec.probes {
                for &dst in &spec.destinations {
                    measurements.push(sim.measure(probe, dst, t, spec.flow_id));
                }
            }
        }
        Campaign { spec, measurements }
    }

    /// All measurements between one probe and one destination, time-ordered.
    pub fn series(&self, probe: ProbeId, dst: Ipv4Addr) -> Vec<&Traceroute> {
        self.measurements
            .iter()
            .filter(|m| m.probe == probe && m.dst == dst)
            .collect()
    }

    /// `(time, end-to-end RTT)` pairs of all completed measurements,
    /// aggregated across all probe/destination pairs, time-ordered.
    pub fn rtt_points(&self) -> Vec<(SimTime, f64)> {
        let mut pts: Vec<(SimTime, f64)> = self
            .measurements
            .iter()
            .filter_map(|m| m.end_to_end_rtt().map(|r| (m.time, r)))
            .collect();
        pts.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.partial_cmp(&b.1).unwrap()));
        pts
    }

    /// Mean RTT of completed measurements within a window; `None` if there
    /// are none.
    pub fn mean_rtt_in(&self, w: TimeWindow) -> Option<f64> {
        let vals: Vec<f64> = self
            .measurements
            .iter()
            .filter(|m| w.contains(m.time))
            .filter_map(|m| m.end_to_end_rtt())
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Fraction of measurements that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.measurements.is_empty() {
            return 0.0;
        }
        self.measurements.iter().filter(|m| m.completed).count() as f64
            / self.measurements.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use world::{generate, EventKind, Scenario, WorldConfig};

    fn cut_scenario() -> (Scenario, SimTime) {
        let world = generate(&WorldConfig::default());
        let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let cut = SimTime::EPOCH + SimDuration::days(5);
        (Scenario::quiet(world, 10).with_event(EventKind::CableCut { cable }, cut), cut)
    }

    fn asian_destinations(world: &world::World, n: usize) -> Vec<Ipv4Addr> {
        world
            .prefixes
            .iter()
            .filter(|p| {
                world.as_info(p.origin).map(|a| {
                    a.region == Region::Asia && a.tier == world::AsTier::Access
                }) == Some(true)
            })
            .take(n)
            .map(|p| p.net.host(1))
            .collect()
    }

    #[test]
    fn campaign_produces_expected_volume() {
        let (s, _) = cut_scenario();
        let sim = TracerouteSimulator::new(&s);
        let dests = asian_destinations(&s.world, 3);
        let probes: Vec<ProbeId> = s.world.probes.iter().take(4).map(|p| p.id).collect();
        let spec = CampaignSpec {
            probes: probes.clone(),
            destinations: dests.clone(),
            window: TimeWindow::new(SimTime(0), SimTime(86_400)),
            interval: SimDuration::hours(6),
            flow_id: 0,
        };
        let c = Campaign::run(&sim, spec);
        assert_eq!(c.measurements.len(), 4 /*samples*/ * probes.len() * dests.len());
        assert!(c.completion_rate() > 0.8);
    }

    #[test]
    fn cable_cut_shifts_mean_rtt_for_europe_asia() {
        let (s, cut) = cut_scenario();
        let sim = TracerouteSimulator::new(&s);
        let dests = asian_destinations(&s.world, 6);
        let spec = CampaignSpec::regional(
            &s.world,
            Region::Europe,
            dests,
            s.horizon,
            SimDuration::hours(8),
        );
        let c = Campaign::run(&sim, spec);
        let before = c
            .mean_rtt_in(TimeWindow::new(s.horizon.start, cut))
            .expect("pre-cut samples");
        let after = c
            .mean_rtt_in(TimeWindow::new(cut, s.horizon.end))
            .expect("post-cut samples");
        assert!(
            after > before,
            "cutting SeaMeWe-5 must raise Europe→Asia mean RTT ({before:.1} → {after:.1})"
        );
    }

    #[test]
    fn series_is_per_pair_and_time_ordered() {
        let (s, _) = cut_scenario();
        let sim = TracerouteSimulator::new(&s);
        let dests = asian_destinations(&s.world, 2);
        let spec = CampaignSpec {
            probes: vec![s.world.probes[0].id, s.world.probes[1].id],
            destinations: dests.clone(),
            window: TimeWindow::new(SimTime(0), SimTime(43_200)),
            interval: SimDuration::hours(3),
            flow_id: 0,
        };
        let c = Campaign::run(&sim, spec);
        let series = c.series(s.world.probes[0].id, dests[0]);
        assert_eq!(series.len(), 4);
        for w in series.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn sample_times_respect_interval() {
        let spec = CampaignSpec {
            probes: vec![],
            destinations: vec![],
            window: TimeWindow::new(SimTime(0), SimTime(100)),
            interval: SimDuration::seconds(30),
            flow_id: 0,
        };
        assert_eq!(
            spec.sample_times(),
            vec![SimTime(0), SimTime(30), SimTime(60), SimTime(90)]
        );
    }
}
