//! RTT synthesis and hop records: turning a forwarding path into the
//! traceroute a probe would actually report.
//!
//! The latency model, hop by hop:
//!
//! * crossing an inter-AS link costs its propagation latency (which embeds
//!   the physical path — the cable detour is what makes post-failure RTTs
//!   jump);
//! * moving through an AS from ingress city to egress city costs the
//!   intra-AS backbone latency (fiber over the great circle) plus a fixed
//!   per-router processing cost;
//! * every reading carries deterministic jitter, and a small fraction of
//!   hops time out;
//! * active congestion surges between the probe's and destination's
//!   regions add their extra latency once.

use net_model::{Asn, CityId, Ipv4Addr, ProbeId, SimTime};
use serde::{Deserialize, Serialize};
use world::events::stable_hash;

use crate::path::ForwardingPath;
use crate::TracerouteSimulator;

/// Per-router processing/serialization cost, ms (one-way).
const ROUTER_COST_MS: f64 = 0.15;

/// Probability that a single hop reading times out.
const HOP_TIMEOUT_PROB: f64 = 0.008;

/// One traceroute hop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hop {
    pub ttl: u8,
    /// Responding interface; `None` on timeout.
    pub addr: Option<Ipv4Addr>,
    /// AS owning the interface, when known.
    pub asn: Option<Asn>,
    /// City of the responding router, when known.
    pub city: Option<CityId>,
    /// Round-trip time; `None` on timeout.
    pub rtt_ms: Option<f64>,
}

/// A complete traceroute measurement record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Traceroute {
    pub probe: ProbeId,
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub time: SimTime,
    pub flow_id: u16,
    pub hops: Vec<Hop>,
    /// Whether the destination answered.
    pub completed: bool,
}

impl Traceroute {
    /// End-to-end RTT (last hop's reading), if completed.
    pub fn end_to_end_rtt(&self) -> Option<f64> {
        if !self.completed {
            return None;
        }
        self.hops.last().and_then(|h| h.rtt_ms)
    }

    /// The AS-level path as revealed by the hops (deduplicated, order
    /// preserved) — what an AS-traceroute tool would infer.
    pub fn as_hops(&self) -> Vec<Asn> {
        let mut out: Vec<Asn> = Vec::new();
        for h in &self.hops {
            if let Some(asn) = h.asn {
                if out.last() != Some(&asn) {
                    out.push(asn);
                }
            }
        }
        out
    }
}

/// Deterministic jitter in `[0, max_ms)`, varying with time bucket so
/// repeated measurements differ realistically but reproducibly.
fn jitter_ms(seed: u64, parts: &[u64], max_ms: f64) -> f64 {
    let mut v = vec![seed];
    v.extend_from_slice(parts);
    let h = stable_hash(&v);
    (h % 10_000) as f64 / 10_000.0 * max_ms
}

fn hop_times_out(seed: u64, parts: &[u64]) -> bool {
    let mut v = vec![seed, 0xdead];
    v.extend_from_slice(parts);
    let h = stable_hash(&v);
    (h as f64 / u64::MAX as f64) < HOP_TIMEOUT_PROB
}

/// Executes the RTT model over a derived forwarding path.
pub fn execute(
    sim: &TracerouteSimulator<'_>,
    probe: ProbeId,
    dst: Ipv4Addr,
    time: SimTime,
    flow_id: u16,
    fwd: &ForwardingPath,
) -> Traceroute {
    let world = &sim.scenario().world;
    let probe_info = *world.probe(probe);
    let seed = world.seed;
    // Five-minute time bucket: repeated samples inside a bucket coincide,
    // across buckets they differ.
    let bucket = (time.0 / 300) as u64;

    let mut hops = Vec::new();
    let mut one_way_ms = 0.0f64;
    let mut ttl: u8 = 1;
    let mut current_city = probe_info.city;

    // First hop: the probe's home gateway.
    one_way_ms += ROUTER_COST_MS + jitter_ms(seed, &[probe.0 as u64, bucket, 0], 0.4);
    hops.push(Hop {
        ttl,
        addr: Some(probe_info.addr),
        asn: Some(probe_info.asn),
        city: Some(probe_info.city),
        rtt_ms: Some(2.0 * one_way_ms),
    });

    if !fwd.routed {
        // No route: a few anonymous timeouts, then give up — the classic
        // look of traceroute into a withdrawn prefix.
        for _ in 0..3 {
            ttl += 1;
            hops.push(Hop { ttl, addr: None, asn: None, city: None, rtt_ms: None });
        }
        return Traceroute {
            probe,
            src: probe_info.addr,
            dst,
            time,
            flow_id,
            hops,
            completed: false,
        };
    }

    for (i, step) in fwd.steps.iter().enumerate() {
        // Intra-AS: current city → egress city of this step.
        let a = world.city(current_city).location;
        let b = world.city(step.egress_city).location;
        one_way_ms += a.fiber_latency_ms(&b) + ROUTER_COST_MS;

        // Failure-displaced congestion on the link about to be crossed
        // (see `TracerouteSimulator` docs).
        one_way_ms += sim.link_congestion_ms(time, step.link);

        ttl += 1;
        let hop_parts = [probe.0 as u64, dst.0 as u64, bucket, i as u64 + 1];
        if hop_times_out(seed, &hop_parts) {
            hops.push(Hop { ttl, addr: None, asn: None, city: None, rtt_ms: None });
        } else {
            let j = jitter_ms(seed, &hop_parts, 1.2);
            hops.push(Hop {
                ttl,
                addr: Some(step.egress_addr),
                asn: Some(step.from_as),
                city: Some(step.egress_city),
                rtt_ms: Some(2.0 * one_way_ms + j),
            });
        }

        // Cross the inter-AS link.
        let link = world.link(step.link);
        one_way_ms += link.latency_ms;
        current_city = step.ingress_city;
    }

    // Final segment: ingress city of the origin AS to the destination host
    // (hosted at the origin AS's PoP nearest to the entry point).
    let origin = *fwd.as_path.last().expect("routed paths are non-empty");
    let origin_info = world.as_info(origin).expect("origin AS exists");
    let dest_city = origin_info
        .presence
        .iter()
        .copied()
        .min_by(|&x, &y| {
            let t = world.city(current_city).location;
            let dx = world.city(x).location.distance_km(&t);
            let dy = world.city(y).location.distance_km(&t);
            dx.partial_cmp(&dy).unwrap().then(x.cmp(&y))
        })
        .unwrap_or(current_city);
    let a = world.city(current_city).location;
    let b = world.city(dest_city).location;
    one_way_ms += a.fiber_latency_ms(&b) + ROUTER_COST_MS;

    // Congestion surge between probe region and destination region.
    let dst_region = origin_info.region;
    one_way_ms += sim.scenario().congestion_extra_ms(time, probe_info.region, dst_region);

    ttl += 1;
    let j = jitter_ms(seed, &[probe.0 as u64, dst.0 as u64, bucket, 0xFF], 1.2);
    hops.push(Hop {
        ttl,
        addr: Some(dst),
        asn: Some(origin),
        city: Some(dest_city),
        rtt_ms: Some(2.0 * one_way_ms + j),
    });

    Traceroute { probe, src: probe_info.addr, dst, time, flow_id, hops, completed: true }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::SimDuration;
    use world::{generate, EventKind, Scenario, WorldConfig};

    fn fixture() -> (Scenario, SimTime) {
        let world = generate(&WorldConfig::default());
        let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let cut = SimTime::EPOCH + SimDuration::days(5);
        (Scenario::quiet(world, 10).with_event(EventKind::CableCut { cable }, cut), cut)
    }

    #[test]
    fn rtts_are_monotone_along_the_path() {
        let (s, _) = fixture();
        let sim = TracerouteSimulator::new(&s);
        let probe = s.world.probes[1].id;
        let dst = s.world.prefixes[120].net.host(1);
        let tr = sim.measure(probe, dst, SimTime::EPOCH + SimDuration::days(1), 3);
        assert!(tr.completed);
        let rtts: Vec<f64> = tr.hops.iter().filter_map(|h| h.rtt_ms).collect();
        assert!(rtts.len() >= 2);
        for w in rtts.windows(2) {
            // Jitter is bounded by 1.2 ms, distances dominate; allow tiny
            // inversions from jitter.
            assert!(w[1] + 1.5 > w[0], "rtt sequence {rtts:?} not monotone-ish");
        }
    }

    #[test]
    fn long_haul_rtt_is_physically_plausible() {
        let (s, _) = fixture();
        let sim = TracerouteSimulator::new(&s);
        // European probe to an Asian access prefix.
        let probe = s
            .world
            .probes
            .iter()
            .find(|p| p.region == net_model::Region::Europe)
            .unwrap();
        let asian_pfx = s
            .world
            .prefixes
            .iter()
            .find(|p| {
                s.world.as_info(p.origin).map(|a| {
                    a.region == net_model::Region::Asia && a.tier == world::AsTier::Access
                }) == Some(true)
            })
            .unwrap();
        let tr = sim.measure(probe.id, asian_pfx.net.host(1), SimTime::EPOCH, 0);
        assert!(tr.completed);
        let rtt = tr.end_to_end_rtt().unwrap();
        assert!(
            (60.0..800.0).contains(&rtt),
            "Europe→Asia RTT {rtt}ms outside plausible band"
        );
    }

    #[test]
    fn unrouted_destination_yields_incomplete_trace() {
        let (s, _) = fixture();
        let sim = TracerouteSimulator::new(&s);
        let tr = sim.measure(
            s.world.probes[0].id,
            Ipv4Addr::from_octets(203, 0, 113, 7),
            SimTime::EPOCH,
            0,
        );
        assert!(!tr.completed);
        assert!(tr.end_to_end_rtt().is_none());
        assert!(tr.hops.iter().skip(1).all(|h| h.rtt_ms.is_none()));
    }

    #[test]
    fn as_hops_match_bgp_path() {
        let (s, _) = fixture();
        let sim = TracerouteSimulator::new(&s);
        let probe = &s.world.probes[5];
        let pfx = &s.world.prefixes[60];
        let t = SimTime::EPOCH + SimDuration::days(2);
        let tr = sim.measure(probe.id, pfx.net.host(1), t, 1);
        if tr.completed {
            let expected = sim.routing_at(t).route(probe.asn, pfx.origin).unwrap();
            let revealed = tr.as_hops();
            // Every revealed ASN must appear on the BGP path, in order
            // (timeouts may hide some).
            let mut iter = expected.as_path.iter();
            for asn in &revealed {
                assert!(
                    iter.any(|e| e == asn),
                    "revealed {asn} not on BGP path {:?}",
                    expected.as_path
                );
            }
        }
    }

    #[test]
    fn congestion_raises_rtt_without_path_change() {
        let (s, _) = fixture();
        // Build a second scenario that adds a congestion surge over days 6–8.
        let mut s2 = s.clone();
        let start = SimTime::EPOCH + SimDuration::days(6);
        s2.push_event(
            EventKind::CongestionSurge {
                from: net_model::Region::Europe,
                to: net_model::Region::Asia,
                extra_ms: 40.0,
            },
            start,
            Some(start + SimDuration::days(2)),
        );
        let sim = TracerouteSimulator::new(&s2);
        let probe = s2
            .world
            .probes
            .iter()
            .find(|p| p.region == net_model::Region::Europe)
            .unwrap();
        let pfx = s2
            .world
            .prefixes
            .iter()
            .find(|p| {
                s2.world.as_info(p.origin).map(|a| a.region == net_model::Region::Asia)
                    == Some(true)
            })
            .unwrap();
        let dst = pfx.net.host(1);
        let before = sim.measure(probe.id, dst, start - SimDuration::hours(2), 0);
        let during = sim.measure(probe.id, dst, start + SimDuration::hours(2), 0);
        if let (Some(b), Some(d)) = (before.end_to_end_rtt(), during.end_to_end_rtt()) {
            assert!(d > b + 30.0, "surge should add ≈40ms (before {b}, during {d})");
        } else {
            panic!("both measurements should complete");
        }
    }
}
