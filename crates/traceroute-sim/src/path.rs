//! Forwarding-path derivation: from a probe and destination to the exact
//! sequence of IP links a packet traverses.
//!
//! The inter-AS skeleton comes from the BGP best path; within each AS the
//! packet travels the AS's backbone from its entry city to the egress
//! link's city. Where an AS pair has parallel links, the Paris flow id
//! picks one deterministically — same flow, same path.

use net_model::{Asn, CityId, Ipv4Addr, LinkId, ProbeId, SimTime};
use world::events::stable_hash;

use crate::TracerouteSimulator;

/// One inter-AS step of the forwarding path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStep {
    /// Link crossed to reach the next AS.
    pub link: LinkId,
    /// AS being left.
    pub from_as: Asn,
    /// AS being entered.
    pub to_as: Asn,
    /// City where the packet leaves `from_as`.
    pub egress_city: CityId,
    /// City where the packet enters `to_as`.
    pub ingress_city: CityId,
    /// Egress interface address (the hop a traceroute reveals).
    pub egress_addr: Ipv4Addr,
    /// Ingress interface address on the far side.
    pub ingress_addr: Ipv4Addr,
}

/// A complete derived forwarding path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ForwardingPath {
    /// AS-level route (probe's AS first, destination origin last).
    pub as_path: Vec<Asn>,
    /// Inter-AS steps; empty when src and dst share an AS.
    pub steps: Vec<PathStep>,
    /// Whether a route existed at measurement time.
    pub routed: bool,
}

/// Derives the forwarding path for `(probe, dst)` at `time` under `flow_id`.
pub fn forwarding_path(
    sim: &TracerouteSimulator<'_>,
    probe: ProbeId,
    dst: Ipv4Addr,
    time: SimTime,
    flow_id: u16,
) -> ForwardingPath {
    let world = &sim.scenario().world;
    let probe_info = world.probe(probe);

    let (_, origin) = match sim.resolve(dst) {
        Some(x) => x,
        None => return ForwardingPath::default(),
    };

    let route = match sim.routing_at(time).route(probe_info.asn, origin) {
        Some(r) => r,
        None => return ForwardingPath::default(),
    };

    let down = sim.scenario().links_down_at(time);
    let mut steps = Vec::new();
    let mut current_city = probe_info.city;

    for w in route.as_path.windows(2) {
        let (from_as, to_as) = (w[0], w[1]);
        // Live parallel links between the pair, canonical (ascending id)
        // order — an O(k) hit on the world's AS-pair index instead of a
        // scan over every link per AS hop.
        let candidates: Vec<&world::IpLink> = world
            .links_between(from_as, to_as)
            .iter()
            .map(|&l| world.link(l))
            .filter(|l| !down.contains(&l.id))
            .collect();
        if candidates.is_empty() {
            // The BGP route says the adjacency exists, so this should not
            // happen; treat defensively as unrouted.
            return ForwardingPath { as_path: route.as_path, steps, routed: false };
        }
        // Paris semantics: flow id (+ hop position) selects the link.
        let pick = stable_hash(&[flow_id as u64, steps.len() as u64]) as usize % candidates.len();
        let link = candidates[pick];
        let (egress, ingress) =
            if link.a.asn == from_as { (link.a, link.b) } else { (link.b, link.a) };
        steps.push(PathStep {
            link: link.id,
            from_as,
            to_as,
            egress_city: egress.city,
            ingress_city: ingress.city,
            egress_addr: egress.addr,
            ingress_addr: ingress.addr,
        });
        current_city = ingress.city;
    }
    let _ = current_city;

    ForwardingPath { as_path: route.as_path, steps, routed: true }
}

impl ForwardingPath {
    /// The set of IP links traversed.
    pub fn links(&self) -> Vec<LinkId> {
        self.steps.iter().map(|s| s.link).collect()
    }

    /// Whether the path crosses the given link.
    pub fn uses_link(&self, link: LinkId) -> bool {
        self.steps.iter().any(|s| s.link == link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::SimDuration;
    use world::{generate, EventKind, Scenario, WorldConfig};

    fn sim_fixture() -> (Scenario, SimTime) {
        let world = generate(&WorldConfig::default());
        let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let cut = net_model::SimTime::EPOCH + SimDuration::days(5);
        (Scenario::quiet(world, 10).with_event(EventKind::CableCut { cable }, cut), cut)
    }

    /// Finds a probe/destination pair whose pre-cut path rides the cable.
    fn affected_pair(
        s: &Scenario,
        sim: &TracerouteSimulator<'_>,
        cut: SimTime,
    ) -> Option<(ProbeId, Ipv4Addr)> {
        let cable = s.world.cable_by_name("SeaMeWe-5").unwrap().id;
        let affected: std::collections::BTreeSet<LinkId> =
            s.world.links_on_cable(cable).into_iter().collect();
        let before = cut - SimDuration::hours(1);
        for probe in &s.world.probes {
            for pfx in s.world.prefixes.iter().step_by(7) {
                let dst = pfx.net.host(1);
                let path = forwarding_path(sim, probe.id, dst, before, 0);
                if path.routed && path.links().iter().any(|l| affected.contains(l)) {
                    return Some((probe.id, dst));
                }
            }
        }
        None
    }

    #[test]
    fn paths_follow_bgp_and_are_flow_stable() {
        let (s, _) = sim_fixture();
        let sim = TracerouteSimulator::new(&s);
        let probe = s.world.probes[3].id;
        let dst = s.world.prefixes[100].net.host(9);
        let t = net_model::SimTime::EPOCH + SimDuration::days(1);

        let p1 = forwarding_path(&sim, probe, dst, t, 42);
        let p2 = forwarding_path(&sim, probe, dst, t, 42);
        assert_eq!(p1, p2, "same flow id must give the same path");
        assert!(p1.routed);
        assert_eq!(p1.steps.len(), p1.as_path.len() - 1);

        // Step chain is contiguous.
        for (i, st) in p1.steps.iter().enumerate() {
            assert_eq!(st.from_as, p1.as_path[i]);
            assert_eq!(st.to_as, p1.as_path[i + 1]);
        }
    }

    #[test]
    fn flow_sweep_can_reveal_parallel_links() {
        let (s, _) = sim_fixture();
        let sim = TracerouteSimulator::new(&s);
        let t = net_model::SimTime::EPOCH + SimDuration::days(1);
        // Over many probe/dst pairs and 16 flows, at least one pair must
        // show path diversity (the world has parallel links).
        let mut diverse = false;
        'outer: for probe in s.world.probes.iter().take(20) {
            for pfx in s.world.prefixes.iter().step_by(11).take(20) {
                let dst = pfx.net.host(1);
                let mut seen = std::collections::BTreeSet::new();
                for flow in 0..16u16 {
                    let p = forwarding_path(&sim, probe.id, dst, t, flow);
                    if p.routed {
                        seen.insert(p.links());
                    }
                }
                if seen.len() > 1 {
                    diverse = true;
                    break 'outer;
                }
            }
        }
        assert!(diverse, "MDA-style flow sweep should find load-balanced paths somewhere");
    }

    #[test]
    fn cable_cut_moves_affected_paths() {
        let (s, cut) = sim_fixture();
        let sim = TracerouteSimulator::new(&s);
        let (probe, dst) = affected_pair(&s, &sim, cut).expect("some pair rides SeaMeWe-5");
        let before = forwarding_path(&sim, probe, dst, cut - SimDuration::hours(1), 0);
        let after = forwarding_path(&sim, probe, dst, cut + SimDuration::hours(1), 0);
        assert!(before.routed);
        // After the cut the path must differ (link set changes: the failed
        // links cannot appear).
        let cable = s.world.cable_by_name("SeaMeWe-5").unwrap().id;
        let failed: std::collections::BTreeSet<LinkId> =
            s.world.links_on_cable(cable).into_iter().collect();
        assert!(after.links().iter().all(|l| !failed.contains(l)));
        assert_ne!(before.links(), after.links());
    }

    #[test]
    fn unannounced_destination_is_unrouted() {
        let (s, _) = sim_fixture();
        let sim = TracerouteSimulator::new(&s);
        let p = forwarding_path(
            &sim,
            s.world.probes[0].id,
            Ipv4Addr::from_octets(198, 51, 100, 1),
            net_model::SimTime::EPOCH,
            0,
        );
        assert!(!p.routed);
        assert!(p.steps.is_empty());
    }
}
