//! # traceroute-sim — the active-measurement substrate
//!
//! A RIPE-Atlas-style measurement platform over the synthetic world:
//! probes launch Paris-traceroute-compatible measurements ([11, 26] in the
//! paper) whose forwarding paths follow the BGP simulator's AS-level
//! routes and whose RTTs follow fiber propagation over the physical paths
//! of the traversed IP links.
//!
//! Key behaviours reproduced:
//!
//! * **BGP-coupled forwarding** — when a cable cut changes AS paths, the
//!   IP paths and RTTs of affected probe/destination pairs change at the
//!   same instant; the forensic case study depends on this coupling;
//! * **Paris flow semantics** — the flow identifier deterministically
//!   selects among parallel links between an AS pair, so one flow sees a
//!   stable path while an MDA-style sweep over flow ids enumerates the
//!   load-balanced alternatives;
//! * **measurement noise** — deterministic per-(probe, dst, hop, time)
//!   jitter and a small timeout probability, so statistical baselines have
//!   realistic texture;
//! * **congestion confounders** — scenario congestion surges raise RTTs
//!   without any routing change, giving forensic workflows a true-negative
//!   to distinguish.

pub mod campaign;
pub mod path;
pub mod rtt;

pub use campaign::{Campaign, CampaignSpec};
pub use path::{ForwardingPath, PathStep};
pub use rtt::{Hop, Traceroute};

use std::collections::BTreeMap;

use net_model::{Ipv4Addr, ProbeId, SimTime};
use world::Scenario;

use bgp_sim::RoutingTable;

/// How strongly reduced corridor capacity shows up as queueing delay:
/// the one-way extra at 100% displaced capacity, in ms.
pub const CONGESTION_SENSITIVITY_MS: f64 = 80.0;

/// The measurement engine for one scenario.
///
/// Routing state is precomputed per *topology epoch* (the intervals between
/// scenario events), so measuring is cheap even for large campaigns.
pub struct TracerouteSimulator<'a> {
    scenario: &'a Scenario,
    /// Epoch boundaries: event times, ascending.
    boundaries: Vec<SimTime>,
    /// Routing table per epoch (`boundaries.len() + 1` entries).
    tables: Vec<RoutingTable>,
    /// Per-epoch link congestion surcharge (one-way ms): when a cable
    /// fails, its traffic displaces onto links riding *sibling* systems
    /// (cables sharing the failed cable's landing corridor), so those
    /// links queue. This is how a cable cut raises RTTs even for traffic
    /// whose paths survive.
    link_extra: Vec<BTreeMap<net_model::LinkId, f64>>,
    /// prefix lookup, by network address.
    prefix_index: BTreeMap<u32, (net_model::Ipv4Net, net_model::Asn)>,
}

impl<'a> TracerouteSimulator<'a> {
    /// Builds the simulator, precomputing per-epoch routing.
    pub fn new(scenario: &'a Scenario) -> Self {
        let boundaries: Vec<SimTime> =
            scenario.timeline().into_iter().map(|(t, _)| t).collect();
        let mut tables = Vec::with_capacity(boundaries.len() + 1);
        let mut sample_points = Vec::with_capacity(boundaries.len() + 1);
        sample_points.push(scenario.horizon.start);
        for b in &boundaries {
            sample_points.push(SimTime(b.0 + 1));
        }
        let mut link_extra = Vec::with_capacity(sample_points.len());
        for &t in &sample_points {
            let graph = bgp_sim::AsGraph::at_time(scenario, t);
            tables.push(RoutingTable::compute(&graph, &scenario.world));
            link_extra.push(link_congestion(scenario, t));
        }
        let prefix_index = scenario
            .world
            .prefixes
            .iter()
            .map(|p| (p.net.network().0, (p.net, p.origin)))
            .collect();
        TracerouteSimulator { scenario, boundaries, tables, link_extra, prefix_index }
    }

    /// The scenario under measurement.
    pub fn scenario(&self) -> &Scenario {
        self.scenario
    }

    /// Index of the topology epoch containing `t`.
    fn epoch(&self, t: SimTime) -> usize {
        self.boundaries.iter().take_while(|&&b| b <= t).count()
    }

    /// Routing table in effect at `t`.
    pub fn routing_at(&self, t: SimTime) -> &RoutingTable {
        &self.tables[self.epoch(t)]
    }

    /// Extra one-way congestion latency on a link at `t`.
    pub fn link_congestion_ms(&self, t: SimTime, link: net_model::LinkId) -> f64 {
        self.link_extra[self.epoch(t)].get(&link).copied().unwrap_or(0.0)
    }

    /// Longest-prefix match for a destination address.
    pub fn resolve(&self, dst: Ipv4Addr) -> Option<(net_model::Ipv4Net, net_model::Asn)> {
        // Prefixes are non-overlapping /20s, so one candidate suffices:
        // the greatest network address ≤ dst.
        self.prefix_index
            .range(..=dst.0)
            .next_back()
            .map(|(_, v)| *v)
            .filter(|(net, _)| net.contains(dst))
    }

    /// Runs one traceroute.
    pub fn measure(
        &self,
        probe: ProbeId,
        dst: Ipv4Addr,
        time: SimTime,
        flow_id: u16,
    ) -> Traceroute {
        let fwd = path::forwarding_path(self, probe, dst, time, flow_id);
        rtt::execute(self, probe, dst, time, flow_id, &fwd)
    }
}

/// Computes the per-link congestion surcharge at time `t`.
///
/// For every cable with failed segments, the capacity its downed links
/// carried displaces onto the live links riding **sibling systems** —
/// cables sharing at least two landing cities with the failed one (they
/// serve the same physical corridor). Each such link queues by
/// `CONGESTION_SENSITIVITY_MS × displaced / (displaced + surviving)`.
fn link_congestion(scenario: &Scenario, t: SimTime) -> BTreeMap<net_model::LinkId, f64> {
    let world = &scenario.world;
    let down = scenario.links_down_at(t);
    let failed_cables: Vec<net_model::CableId> =
        scenario.degraded_cables_at(t).into_iter().collect();
    let mut extra: BTreeMap<net_model::LinkId, f64> = BTreeMap::new();

    for &cf in &failed_cables {
        let failed_cable = world.cable(cf);
        // Capacity the failure displaced.
        let displaced: f64 = world
            .links_on_cable(cf)
            .iter()
            .filter(|l| down.contains(l))
            .map(|&l| world.link(l).capacity_gbps)
            .sum();
        if displaced <= 0.0 {
            continue;
        }
        // Sibling systems on the same corridor.
        let siblings: Vec<net_model::CableId> = world
            .cables
            .iter()
            .filter(|c| c.id != cf)
            .filter(|c| {
                c.landings.iter().filter(|l| failed_cable.landings.contains(l)).count() >= 2
            })
            .map(|c| c.id)
            .collect();
        // Live links riding a sibling absorb the displaced load.
        let mut absorbers: Vec<net_model::LinkId> = Vec::new();
        for &s in &siblings {
            for l in world.links_on_cable(s) {
                if !down.contains(&l) && !absorbers.contains(&l) {
                    absorbers.push(l);
                }
            }
        }
        let surviving: f64 = absorbers.iter().map(|&l| world.link(l).capacity_gbps).sum();
        if surviving <= 0.0 {
            continue;
        }
        let surcharge = CONGESTION_SENSITIVITY_MS * displaced / (displaced + surviving);
        for l in absorbers {
            let e = extra.entry(l).or_default();
            *e = (*e + surcharge).min(CONGESTION_SENSITIVITY_MS);
        }
    }
    extra
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::SimDuration;
    use world::{generate, EventKind, Scenario, WorldConfig};

    fn scenario_with_cut() -> (Scenario, SimTime) {
        let world = generate(&WorldConfig::default());
        let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let cut = SimTime::EPOCH + SimDuration::days(5);
        (Scenario::quiet(world, 10).with_event(EventKind::CableCut { cable }, cut), cut)
    }

    #[test]
    fn epochs_bracket_events() {
        let (s, cut) = scenario_with_cut();
        let sim = TracerouteSimulator::new(&s);
        assert_eq!(sim.epoch(cut - SimDuration::hours(1)), 0);
        assert_eq!(sim.epoch(cut), 1);
        assert_eq!(sim.epoch(cut + SimDuration::days(1)), 1);
    }

    #[test]
    fn resolve_finds_owning_prefix() {
        let (s, _) = scenario_with_cut();
        let sim = TracerouteSimulator::new(&s);
        let p = &s.world.prefixes[7];
        let addr = p.net.host(100);
        let (net, origin) = sim.resolve(addr).expect("address is announced");
        assert_eq!(net, p.net);
        assert_eq!(origin, p.origin);
        // An address outside every /20 resolves to none.
        assert!(sim.resolve(Ipv4Addr::from_octets(203, 0, 113, 1)).is_none());
    }

    #[test]
    fn measurement_is_deterministic() {
        let (s, _) = scenario_with_cut();
        let sim = TracerouteSimulator::new(&s);
        let probe = s.world.probes[0].id;
        let dst = s.world.prefixes[40].net.host(1);
        let t = SimTime::EPOCH + SimDuration::days(1);
        let m1 = sim.measure(probe, dst, t, 7);
        let m2 = sim.measure(probe, dst, t, 7);
        assert_eq!(m1, m2);
    }
}
