//! Bench trajectory: plain wall-clock medians for the substrate and
//! serving hot paths, written as `BENCH_pr10.json` at the repo root (and
//! uploaded as a CI artifact alongside the committed `BENCH_pr2.json`
//! through `BENCH_pr9.json`).
//!
//! ```text
//! cargo run --release -p benchkit --bin bench_report            # repo root
//! cargo run --release -p benchkit --bin bench_report -- out.json
//! ```
//!
//! Unlike the criterion benches (statistical, interactive), this is the
//! cheap comparable record each PR leaves behind: one JSON file with a
//! median per hot path. Benchmark ids are stable across PRs — `BENCH_pr7`
//! repeats every earlier row:
//!
//! * `workflow/exec_dag` — the parallel DAG executor on a fan-out
//!   workload, max workers vs 1 worker (measured in-tree, like the
//!   routing row measures the retained seed engine);
//! * `engine/concurrent_sessions` — N identical queries served end-to-end
//!   (generate + execute) through engine sessions over one shared
//!   scenario, max session threads vs 1 (rebaselined in PR 6: PR 5's
//!   world-keyed artifact stores erased the old cold-store-per-query
//!   baseline — both arms now share the mapping run, so that contrast
//!   reads ~1.0 everywhere — and the contrast that remains in-tree is
//!   thread scaling);
//! * `world/generate_cold` / `world/generate_cached` — one full world
//!   generation vs a content-addressed cache hit on the same config;
//! * `forge/register_family_fleet` — registering every scenario family's
//!   fleet through `Engine::register_family` (worlds deduplicated by the
//!   process-wide cache) vs realizing the same fleet with one cold
//!   generation per scenario;
//! * `bgp/derive_updates_hijack` — the full update-stream derivation for
//!   a control-plane (prefix hijack) scenario: topology-identical
//!   boundaries that the policy-aware memoization must still capture;
//! * `toolkit/mapping_shared_world` — serving the Nautilus mapping
//!   artifact to N scenarios sharing one world through the world-keyed
//!   store vs recomputing the mapping run per scenario (the pre-PR-5
//!   behaviour);
//! * `engine/chaos_overhead` — the `workflow/exec_dag` workload executed
//!   through a `ChaosRuntime` with an *empty* fault plan vs the bare
//!   runtime: the pass-through tax of the injection layer, which the
//!   PR 7 acceptance pins at ≤2% (speedup ≈ 1.0);
//! * `engine/degraded_session` — the CS5 forensics query served with
//!   `bgp.valley_violations` persistently failed (run completes
//!   `Degraded`, skipping the poisoned attribution work) vs the same
//!   query served healthy;
//! * `forge/campaign_10k` — a full campaign (every base family plus both
//!   composed families, ~1k scenario-queries) expanded, registered and
//!   served through `CampaignRunner` at max workers vs the same campaign
//!   at 1 worker;
//! * `engine/telemetry_overhead` — the `workflow/exec_dag` workload with
//!   a fresh `telemetry::Recorder` attached to the executor (every
//!   attempt buffered, spans assembled in the fold) vs the untraced run:
//!   the recording tax, which the PR 9 acceptance pins at ≤2%;
//! * `workflow/trace_export` — serializing a recorded trace to both
//!   canonical JSON and the Chrome `trace_event` format;
//! * `conformance/scan_workspace` — the parallel incremental conformance
//!   scanner (lex + item tree + all rules + crate graph) over the whole
//!   workspace at per-CPU workers vs the serial scan.

// conformance: allow(no-wall-clock, reason = "the bench report exists to measure wall time")
use std::time::Instant;

use serde_json::{json, Value};
use workflow::ToolRuntime;
use world::{generate, Scenario, WorldConfig};

/// Median wall-clock milliseconds over `iters` runs of `f` (plus one
/// untimed warmup).
fn median_ms<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            // conformance: allow(no-wall-clock, reason = "median_ms samples the clock being benchmarked")
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn bench(id: &str, median: f64) -> Value {
    json!({ "id": id, "median_ms": median })
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        // The binary lives in crates/bench; the trajectory file lives at
        // the repo root.
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr10.json").to_string()
    });

    let world = generate(&WorldConfig::default());
    let scenario = Scenario::quiet(world, 10);
    let world = &scenario.world;
    let mut benchmarks: Vec<Value> = Vec::new();

    // --- BGP full routing table: dense engine vs retained seed engine ---
    let graph = bgp_sim::AsGraph::at_time(&scenario, net_model::SimTime::EPOCH);
    let dense = median_ms(15, || {
        let g = bgp_sim::AsGraph::at_time(&scenario, net_model::SimTime::EPOCH);
        bgp_sim::RoutingTable::compute(&g, world).reachable_from(world.ases[0].asn)
    });
    let reference = median_ms(7, || {
        let g = bgp_sim::AsGraph::at_time(&scenario, net_model::SimTime::EPOCH);
        bgp_sim::routing::reference::compute(&g, world).len()
    });
    benchmarks.push(json!({
        "id": "substrates/bgp/full_routing_table",
        "median_ms": dense,
        "baseline": "seed BTreeMap engine (bgp_sim::routing::reference)",
        "baseline_median_ms": reference,
        "speedup": reference / dense,
    }));

    // --- Xaminer: oracle impact report for a major cable failure --------
    let engine = xaminer_sim::XaminerEngine::oracle(world);
    let cable = world.cable_by_name("SeaMeWe-5").expect("curated cable").id;
    benchmarks.push(bench(
        "substrates/xaminer/impact_report",
        median_ms(25, || {
            engine
                .impact_report(&xaminer_sim::FailureEvent::CableFailure { cable })
                .total_links
        }),
    ));

    // --- Registry: E5-style search against a padded registry ------------
    let registry = benchkit::padded_registry(400);
    let queries = [
        "map submarine cables",
        "process failure event impact",
        "bgp updates for a time window",
        "country level impact table",
    ];
    benchmarks.push(bench(
        "registry/search_400_entries",
        median_ms(50, || {
            queries.iter().map(|q| registry.search(q, 10).len()).sum::<usize>()
        }),
    ));

    // --- World: cross-layer index lookups (Xaminer/toolkit hot loops) ---
    let countries: Vec<net_model::Country> =
        world.ases.iter().map(|a| a.country).collect();
    benchmarks.push(bench(
        "world/cross_layer_lookups",
        median_ms(50, || {
            let mut acc = 0usize;
            for c in &world.cables {
                acc += world.links_on_cable_ref(c.id).len();
                acc += world.cable_by_name(&c.name).map(|c| c.landings.len()).unwrap_or(0);
            }
            for &c in &countries {
                acc += world.as_count_in_country(c);
            }
            acc
        }),
    ));

    // --- RIB capture: routing + per-(peer, origin) path materialization -
    let peers: Vec<net_model::Asn> =
        world.ases.iter().take(40).map(|a| a.asn).collect();
    benchmarks.push(bench(
        "substrates/bgp/rib_capture_40_peers",
        median_ms(7, || {
            bgp_sim::RibSnapshot::capture(&scenario, &peers, net_model::SimTime::EPOCH)
                .entries
                .len()
        }),
    ));

    // --- PR 3: parallel DAG executor, max workers vs 1 ------------------
    // Exercise at least 4 workers even on small containers so the
    // concurrent paths are the thing being measured; on a single-CPU box
    // the speedup honestly reads ~1.0 and CI's multi-core run shows the
    // real scaling.
    let max_workers = workflow::exec::default_workers().max(4);
    let (dag_registry, dag_workflow) = benchkit::exec_dag_workload(24);
    let busy = benchkit::BusyRuntime { rounds: 400_000 };
    let dag_args = std::collections::BTreeMap::new();
    let dag_seq = median_ms(9, || {
        workflow::execute_with(
            &dag_workflow, &dag_registry, &busy, &dag_args,
            &workflow::ExecOptions { workers: 1, ..Default::default() },
        )
        .executed
    });
    // The parallel arm doubles as the baseline for the chaos- and
    // telemetry-overhead rows below, where the acceptance threshold is
    // a couple of percent — sample it (and them) hard enough that
    // scheduler jitter stays under the threshold being measured.
    let dag_par = median_ms(21, || {
        workflow::execute_with(
            &dag_workflow, &dag_registry, &busy, &dag_args,
            &workflow::ExecOptions { workers: max_workers, ..Default::default() },
        )
        .executed
    });
    benchmarks.push(json!({
        "id": "workflow/exec_dag",
        "median_ms": dag_par,
        "baseline": "same DAG at 1 worker",
        "baseline_median_ms": dag_seq,
        "workers": max_workers,
        "speedup": dag_seq / dag_par,
    }));

    // --- PR 7: chaos pass-through tax ------------------------------------
    // The same DAG workload routed through a ChaosRuntime with an empty
    // fault plan: every invocation pays the plan lookup + counter bump
    // and nothing else. The acceptance pins this at ≤2% over the bare
    // runtime (`workflow/exec_dag` parallel arm above).
    let chaotic = arachnet::ChaosRuntime::new(
        benchkit::BusyRuntime { rounds: 400_000 },
        arachnet::FaultPlan::empty(),
    );
    let dag_chaos = median_ms(21, || {
        workflow::execute_with(
            &dag_workflow, &dag_registry, &chaotic, &dag_args,
            &workflow::ExecOptions { workers: max_workers, ..Default::default() },
        )
        .executed
    });
    benchmarks.push(json!({
        "id": "engine/chaos_overhead",
        "median_ms": dag_chaos,
        "baseline": "the same DAG on the bare runtime (workflow/exec_dag)",
        "baseline_median_ms": dag_par,
        "workers": max_workers,
        "overhead_pct": (dag_chaos / dag_par - 1.0) * 100.0,
        "speedup": dag_par / dag_chaos,
    }));

    // --- PR 9: telemetry recording tax ------------------------------------
    // The same DAG workload with a fresh Recorder attached: every
    // invocation's events buffer through the recorder and the fold
    // assembles the span tree. The acceptance pins this at ≤2% over the
    // untraced parallel arm.
    let dag_traced = median_ms(21, || {
        let recorder = std::sync::Arc::new(arachnet::Recorder::new());
        workflow::execute_with(
            &dag_workflow, &dag_registry, &busy, &dag_args,
            &workflow::ExecOptions {
                workers: max_workers,
                recorder: Some(std::sync::Arc::clone(&recorder)),
                ..Default::default()
            },
        )
        .executed
    });
    benchmarks.push(json!({
        "id": "engine/telemetry_overhead",
        "median_ms": dag_traced,
        "baseline": "the same DAG untraced (workflow/exec_dag)",
        "baseline_median_ms": dag_par,
        "workers": max_workers,
        "overhead_pct": (dag_traced / dag_par - 1.0) * 100.0,
        "speedup": dag_par / dag_traced,
    }));

    // --- PR 9: trace exporters --------------------------------------------
    // One recorded DAG execution serialized to both export formats:
    // canonical JSON (the byte-stable artifact provenance records hash)
    // and the Chrome trace_event form.
    let export_recorder = std::sync::Arc::new(arachnet::Recorder::new());
    workflow::execute_with(
        &dag_workflow, &dag_registry, &busy, &dag_args,
        &workflow::ExecOptions {
            workers: max_workers,
            recorder: Some(std::sync::Arc::clone(&export_recorder)),
            ..Default::default()
        },
    );
    let export_spans = export_recorder.trace().spans.len();
    benchmarks.push(json!({
        "id": "workflow/trace_export",
        "median_ms": median_ms(50, || {
            export_recorder.trace_json().len() + export_recorder.chrome_trace().len()
        }),
        "spans": export_spans,
    }));

    // --- PR 3 (rebaselined in PR 6): concurrent serving sessions ---------
    // N identical queries (generate + execute) through engine sessions
    // over one shared scenario. The old baseline — a cold private
    // artifact store per query — stopped existing in PR 5: world-keyed
    // stores share the mapping run across *any* registrations of the
    // same world, so batch-of-one vs shared read ~1.0 on every machine.
    // The contrast that remains in-tree is thread scaling: the same
    // shared-store load at 1 session thread vs max-worker sessions.
    // Like `workflow/exec_dag`, a single-CPU box honestly reads ~1.0 and
    // CI's multi-core run shows the real scaling.
    let serve_queries = 8usize;
    let serve_query = "Identify the impact at a country level due to SeaMeWe-5 cable failure";
    let serve_shared_seq = median_ms(3, || {
        benchkit::serve_sessions(&scenario, serve_query, serve_queries, true, 1)
    });
    let serve_shared_par = median_ms(3, || {
        benchkit::serve_sessions(&scenario, serve_query, serve_queries, true, max_workers)
    });
    benchmarks.push(json!({
        "id": "engine/concurrent_sessions",
        "median_ms": serve_shared_par,
        "baseline": "same shared-store load at 1 session thread",
        "baseline_median_ms": serve_shared_seq,
        "queries": serve_queries,
        "session_threads": max_workers,
        "speedup": serve_shared_seq / serve_shared_par,
    }));

    // --- PR 4: content-addressed world cache -----------------------------
    // One full world generation (the serving stack's cold-start cost)
    // vs a cache hit on the same config: the hit is an Arc bump behind a
    // short map lock, so N scenarios naming one config pay one build.
    let world_config = WorldConfig::default();
    let generate_cold = median_ms(5, || generate(&world_config).links.len());
    let world_cache = arachnet::WorldCache::new();
    world_cache.get_or_generate(&world_config); // warm the slot
    let generate_cached =
        median_ms(200, || world_cache.get_or_generate(&world_config).links.len());
    benchmarks.push(bench("world/generate_cold", generate_cold));
    benchmarks.push(json!({
        "id": "world/generate_cached",
        "median_ms": generate_cached,
        "baseline": "one full world generation (world/generate_cold)",
        "baseline_median_ms": generate_cold,
        "speedup": generate_cold / generate_cached,
    }));

    // --- PR 4: whole-fleet registration through Engine::register_family --
    // Every family's fleet in one call, worlds deduplicated through the
    // engine's cache; the baseline realizes the same blueprints with one
    // cold generation per scenario (what scenario authoring cost before
    // the forge).
    let fleet_params = arachnet::FamilyParams::default();
    let fleet_size: usize =
        arachnet::Family::ALL.iter().map(|f| f.expand(&fleet_params).len()).sum();
    // Registry and model construction stay outside the timed closure —
    // only engine setup + fleet registration is the path under test.
    let fleet_model = std::sync::Arc::new(llm::DeterministicExpertModel::new());
    let fleet_registry = benchkit::padded_registry(40);
    let fleet_cached = median_ms(3, || {
        let engine = arachnet::Engine::new(
            std::sync::Arc::clone(&fleet_model) as std::sync::Arc<dyn llm::LanguageModel>,
            fleet_registry.clone(),
        );
        engine.register_families(&arachnet::Family::ALL, &fleet_params).len()
    });
    let fleet_cold = median_ms(1, || {
        arachnet::Family::ALL
            .iter()
            .flat_map(|f| f.expand(&fleet_params))
            .map(|bp| {
                bp.realize(std::sync::Arc::new(generate(&bp.config))).events.len()
            })
            .sum::<usize>()
    });
    let family_count = arachnet::Family::ALL.len();
    benchmarks.push(json!({
        "id": "forge/register_family_fleet",
        "median_ms": fleet_cached,
        "baseline": "one cold world generation per scenario (no cache)",
        "baseline_median_ms": fleet_cold,
        "scenarios": fleet_size,
        "families": family_count,
        "speedup": fleet_cold / fleet_cached,
    }));

    // --- PR 5: control-plane incident derivation --------------------------
    // The full update stream for a prefix-hijack scenario: every event
    // boundary is topology-identical, so the policy-aware memoization
    // (not `same_topology` alone) decides the captures.
    let hijack_victim = world.prefixes[0];
    let hijack_origin = world
        .ases
        .iter()
        .map(|a| a.asn)
        .find(|&a| a != hijack_victim.origin)
        .expect("another AS exists");
    let hijack_scenario = world::Scenario::quiet(scenario.world_handle(), 10).with_event(
        world::EventKind::PrefixHijack {
            origin: hijack_origin,
            victim_prefix: hijack_victim.net,
        },
        net_model::SimTime(5 * 86_400),
    );
    let hijack_peers: Vec<net_model::Asn> =
        world.ases.iter().take(40).map(|a| a.asn).collect();
    benchmarks.push(bench(
        "bgp/derive_updates_hijack",
        median_ms(7, || {
            bgp_sim::updates::derive_updates(&hijack_scenario, &hijack_peers).len()
        }),
    ));

    // --- PR 5: world-keyed mapping artifacts ------------------------------
    // N scenarios over one Arc<World>: the world-keyed store serves one
    // mapping run to all of them; the baseline recomputes the Nautilus
    // mapping per scenario (what per-scenario-key stores used to do).
    let mapping_scenarios = 4usize;
    let mapping_shared = median_ms(9, || {
        let mut served = 0usize;
        for _ in 0..mapping_scenarios {
            let rt = toolkit::StandardRuntime::new(world::Scenario::quiet(
                scenario.world_handle(),
                10,
            ));
            let map = std::collections::BTreeMap::new();
            let value = rt
                .invoke(&registry::FunctionId::from("nautilus.map_links"), &map)
                .expect("mapping serves");
            served += usize::from(value.is_native());
        }
        served
    });
    let mapping_cold = median_ms(3, || {
        (0..mapping_scenarios)
            .map(|_| {
                nautilus_sim::NautilusMapper::new(nautilus_sim::MappingConfig::default())
                    .map_world(world)
                    .mappings
                    .len()
            })
            .sum::<usize>()
    });
    benchmarks.push(json!({
        "id": "toolkit/mapping_shared_world",
        "median_ms": mapping_shared,
        "baseline": "one Nautilus mapping run per scenario (per-scenario-key artifact stores)",
        "baseline_median_ms": mapping_cold,
        "scenarios": mapping_scenarios,
        "speedup": mapping_cold / mapping_shared,
    }));

    // --- PR 7: degraded serving ------------------------------------------
    // The CS5 forensics query with `bgp.valley_violations` persistently
    // failed: the run completes Degraded — the poisoned attribution and
    // impact steps are skipped, so the degraded path is *cheaper* than
    // the healthy one, never slower. The baseline serves the same query
    // healthy (empty fault plan).
    let cs5 = toolkit::scenarios::cs5_hijack_scenario();
    let serve_cs5 = |plan: arachnet::FaultPlan| {
        let engine = arachnet::Engine::new(
            std::sync::Arc::clone(&fleet_model) as std::sync::Arc<dyn llm::LanguageModel>,
            toolkit::catalog::standard_registry(),
        )
        .with_fault_plan(plan);
        engine.register_scenario("cs5", cs5.clone());
        let session = engine.session("cs5").expect("cs5 registered");
        let scenario = session.scenario();
        let horizon_days = scenario.horizon.duration().as_seconds() / 86_400;
        let context = toolkit::catalog::query_context(&scenario.world, scenario.now, horizon_days);
        let run = session
            .run(toolkit::scenarios::CS5_QUERY, &context)
            .expect("query serves");
        run.report.executed
    };
    let degraded_plan = arachnet::FaultPlan::new(7)
        .with_fault("bgp.valley_violations", arachnet::FaultKind::Persistent);
    let session_healthy = median_ms(5, || serve_cs5(arachnet::FaultPlan::empty()));
    let session_degraded = median_ms(5, || serve_cs5(degraded_plan.clone()));
    benchmarks.push(json!({
        "id": "engine/degraded_session",
        "median_ms": session_degraded,
        "baseline": "the same CS5 forensics query served healthy (empty fault plan)",
        "baseline_median_ms": session_healthy,
        "speedup": session_healthy / session_degraded,
    }));

    // --- PR 8: fleet-scale campaign serving -------------------------------
    // Every base family plus both composed families expanded through one
    // `CampaignSpec` and served end to end (decompose + plan + execute
    // per query) through the engine's session pool: ~1k scenario-queries
    // per run, worlds deduplicated through the shared cache, outcomes
    // reduced to a `ResilienceScorecard` with a provenance record per
    // query. The baseline is the identical campaign at 1 worker.
    let campaign_params = campaign::FamilyParams::default();
    let mut campaign_ensembles: Vec<campaign::EnsembleSpec> = arachnet::Family::ALL
        .iter()
        .map(|&f| campaign::EnsembleSpec::new(f, campaign_params.clone()))
        .collect();
    campaign_ensembles.extend(
        campaign::ComposedFamily::ALL
            .iter()
            .map(|&f| campaign::EnsembleSpec::new(f, campaign_params.clone())),
    );
    let campaign_scenarios: usize =
        campaign_ensembles.iter().map(|e| e.expand()[0].blueprints.len()).sum();
    // Enough query phrasings that scenarios × queries clears 1k tasks.
    let campaign_queries: Vec<String> = (0..1000usize.div_ceil(campaign_scenarios))
        .map(|i| {
            format!(
                "Case {i}: multiple origin ASes were observed announcing the same \
                 prefixes. Determine whether a prefix hijack or a route leak caused \
                 this, and identify the offending AS."
            )
        })
        .collect();
    let campaign_spec =
        campaign::CampaignSpec::new(campaign_ensembles, campaign_queries);
    // Per-query DAGs run at 1 executor worker here so the campaign-level
    // worker pool is the only parallelism being contrasted — otherwise
    // the two pools oversubscribe each other on small containers.
    let campaign_engine = arachnet::Engine::new(
        std::sync::Arc::clone(&fleet_model) as std::sync::Arc<dyn llm::LanguageModel>,
        toolkit::catalog::standard_registry(),
    )
    .with_exec_workers(1);
    let campaign_tasks = std::cell::Cell::new(0usize);
    let campaign_par = median_ms(3, || {
        let report = campaign::CampaignRunner::new(&campaign_engine)
            .with_workers(max_workers)
            .run(&campaign_spec);
        assert_eq!(report.scorecard.failed, 0, "campaign serves cleanly");
        campaign_tasks.set(report.scorecard.queries);
        report.scorecard.queries
    });
    let campaign_seq = median_ms(1, || {
        campaign::CampaignRunner::new(&campaign_engine)
            .with_workers(1)
            .run(&campaign_spec)
            .scorecard
            .queries
    });
    benchmarks.push(json!({
        "id": "forge/campaign_10k",
        "median_ms": campaign_par,
        "baseline": "the identical campaign served at 1 worker",
        "baseline_median_ms": campaign_seq,
        "scenario_queries": campaign_tasks.get(),
        "scenarios": campaign_scenarios,
        "workers": max_workers,
        "speedup": campaign_seq / campaign_par,
    }));

    // --- PR 10: parallel conformance scan ---------------------------------
    // The whole-workspace conformance scan (file collection, lexing, item
    // trees, every file rule, the crate graph and the workspace rules) at
    // per-CPU workers vs the serial scan. The scan_determinism suite pins
    // the two byte-identical; this row records what the parallelism buys.
    let scan_root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let scan_serial = median_ms(5, || {
        conformance::scan(scan_root).expect("workspace scans").findings.len()
    });
    let scan_par = median_ms(9, || {
        conformance::scan::scan_parallel(scan_root, 0, None)
            .expect("workspace scans")
            .findings
            .len()
    });
    let scan_workers =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let scan_speedup = scan_serial / scan_par;
    benchmarks.push(json!({
        "id": "conformance/scan_workspace",
        "median_ms": scan_par,
        "baseline": "the same scan run serially",
        "baseline_median_ms": scan_serial,
        "workers": scan_workers,
        "speedup": scan_speedup,
    }));

    let report = json!({
        "pr": 10,
        "world": {
            "ases": world.ases.len(),
            "links": world.links.len(),
            "cables": world.cables.len(),
            "prefixes": world.prefixes.len(),
        },
        "graph": { "nodes": graph.node_count(), "edges": graph.edge_count() },
        "benchmarks": benchmarks,
    });

    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, format!("{text}\n")).expect("write bench report");
    println!("{text}");
    eprintln!("wrote {out_path}");
}
