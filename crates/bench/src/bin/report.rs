//! Regenerates every evaluation artifact of the paper (DESIGN.md §4).
//!
//! ```text
//! cargo run --release -p arachnet-bench --bin report -- all
//! cargo run --release -p arachnet-bench --bin report -- cs1 cs4 ensemble
//! ```
//!
//! Artifacts: `figure1`, `cs1`…`cs4` (E1–E4), `scaling` (E5),
//! `ensemble` (E6), `curator` (E7), `conflicts` (E8).

use arachnet_repro::CaseStudy;
use benchkit::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec!["figure1", "cs1", "cs2", "cs3", "cs4", "scaling", "ensemble", "curator", "conflicts"]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    for artifact in wanted {
        match artifact {
            "figure1" => figure1(),
            "cs1" => cs1(),
            "cs2" => cs2(),
            "cs3" => cs3(),
            "cs4" => cs4(),
            "scaling" => scaling(),
            "ensemble" => ensemble_report(),
            "curator" => curator(),
            "conflicts" => conflicts(),
            other => eprintln!("unknown artifact {other:?} (see --help in source)"),
        }
    }
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// F1 — the architecture walkthrough: one query through all four agents.
fn figure1() {
    header("F1 | Figure 1 — four-agent pipeline trace (CS1 query)");
    let (_, run) = case_study_row(CaseStudy::Cs1CableImpact);
    let d = &run.solution.decomposition;
    println!("[QueryMind]      intent={:?} complexity={:?}", d.intent, d.complexity);
    for sp in &d.sub_problems {
        println!("                 sub-problem {:<20} -> {}", sp.id, sp.target);
    }
    for c in &d.constraints {
        println!("                 constraint: {c}");
    }
    for s in &d.success_criteria {
        println!("                 success: {s}");
    }
    println!(
        "[WorkflowScout]  {} steps over frameworks {:?} ({} alternatives considered)",
        run.solution.architecture.steps.len(),
        run.solution.frameworks,
        run.solution.architecture.alternatives_considered
    );
    println!(
        "[SolutionWeaver] {} steps after QA weaving, {} rendered LoC, QA: {:?}",
        run.solution.workflow.steps.len(),
        run.solution.loc,
        run.solution.qa_measures
    );
    println!(
        "[Execution]      {} ok / {} failed / {} poisoned; {} QA findings",
        run.report.executed - run.report.failed,
        run.report.failed,
        run.report.poisoned,
        run.report.qa.len()
    );
    println!("[RegistryCurator] see `curator` artifact (E7)");
}

fn print_row(row: &CaseStudyRow) {
    println!("query: {}", row.query);
    println!(
        "  LoC: paper ≈{}  measured {}   steps: {}   frameworks: {:?}",
        row.paper_loc, row.measured_loc, row.steps, row.frameworks
    );
    println!(
        "  expert function overlap (Jaccard): {:.2}   generated-ok: {}   expert-ok: {}",
        row.function_overlap_with_expert, row.generated_all_ok, row.expert_all_ok
    );
}

/// E1 — CS1: expert-level cable impact analysis.
fn cs1() {
    header("E1 | Case study 1 — SeaMeWe-5 country-level impact (restricted registry)");
    let (row, run) = case_study_row(CaseStudy::Cs1CableImpact);
    print_row(&row);
    if let Some(sim) = country_similarity(&run) {
        println!(
            "  output similarity vs expert: jaccard={:.2} spearman={} top5-overlap={:.2} ({} common countries)",
            sim.jaccard,
            sim.spearman.map(|s| format!("{s:.2}")).unwrap_or_else(|| "n/a".into()),
            sim.top5_overlap,
            sim.common_countries
        );
    }
    if let Some(table) = run.output_as::<toolkit::data::CountryTableData>() {
        println!("  top impacted countries (generated):");
        for r in table.rows.iter().take(5) {
            println!(
                "    {}  score={:.3} links={} ases={}",
                r.country, r.impact_score, r.links_affected, r.ases_affected
            );
        }
    }
    println!(
        "  paper claim: direct processing pipeline derived without Xaminer's high-level \
         abstractions, similar impact metrics — {}",
        if row.generated_all_ok { "reproduced" } else { "NOT reproduced" }
    );
}

/// E2 — CS2: multi-disaster restraint.
fn cs2() {
    header("E2 | Case study 2 — global earthquakes+hurricanes at 10% (restraint)");
    let (row, run) = case_study_row(CaseStudy::Cs2DisasterImpact);
    print_row(&row);
    let analysis_fns: Vec<&str> = run
        .solution
        .workflow
        .steps
        .iter()
        .map(|s| s.function.0.as_str())
        .filter(|f| f.starts_with("xaminer.") || f.starts_with("nautilus.") || f.starts_with("bgp.") || f.starts_with("traceroute."))
        .collect();
    println!("  analysis functions used: {analysis_fns:?}");
    println!(
        "  alternatives considered during exploration: {}",
        run.solution.architecture.alternatives_considered
    );
    if let Some(sim) = country_similarity(&run) {
        println!(
            "  output vs expert: jaccard={:.2} spearman={}",
            sim.jaccard,
            sim.spearman.map(|s| format!("{s:.2}")).unwrap_or_else(|| "n/a".into()),
        );
    }
    // "Only a single function": one *distinct* analysis capability, applied
    // per disaster kind — the paper's workflows "leverage the event
    // processing function's versatility to handle earthquakes and
    // hurricanes separately".
    let mut distinct = analysis_fns.clone();
    distinct.sort();
    distinct.dedup();
    println!(
        "  paper claim: a single event-processing function suffices; no cross-framework \
         integration — {}",
        if distinct == vec!["xaminer.event_impact"] {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    );
}

/// E3 — CS3: cascading failure orchestration across 4 frameworks.
fn cs3() {
    header("E3 | Case study 3 — Europe–Asia cascading failures (4-framework orchestration)");
    let (row, run) = case_study_row(CaseStudy::Cs3CascadingFailure);
    print_row(&row);
    if let Some(f1) = timeline_similarity(&run) {
        println!("  timeline alignment with expert (F1): {f1:.2}");
    }
    if let Some(tl) = run.output_as::<toolkit::data::TimelineData>() {
        println!("  unified timeline: {} events across layers {:?}", tl.events.len(), tl.layers);
        for e in tl.events.iter().take(8) {
            println!("    t={:>8}  [{:^8}] {}", e.t, e.layer, e.description);
        }
    }
    println!(
        "  paper claim: automated integration across 4 frameworks with unified cable/IP/AS \
         timeline — {}",
        if row.frameworks.len() == 4 { "reproduced" } else { "NOT reproduced" }
    );
}

/// E4 — CS4: forensic root-cause investigation.
fn cs4() {
    header("E4 | Case study 4 — forensic root cause of the latency anomaly");
    let (row, run) = case_study_row(CaseStudy::Cs4ForensicRca);
    print_row(&row);
    let (generated, expert) = verdicts(&run);
    if let Some(v) = &generated {
        println!(
            "  generated verdict: cable_caused={} cable={:?} confidence={:.2}",
            v.cable_caused, v.cable, v.confidence
        );
        println!("  narrative: {}", v.narrative);
    }
    if let Some(v) = &expert {
        println!(
            "  expert verdict:    cable_caused={} cable={:?} confidence={:.2}",
            v.cable_caused, v.cable, v.confidence
        );
    }
    let truth = toolkit::scenarios::CS4_CULPRIT;
    let correct = generated
        .as_ref()
        .map(|v| v.cable.as_deref() == Some(truth))
        .unwrap_or(false);
    println!("  injected culprit: {truth}   identified correctly: {correct}");
    println!(
        "  paper claim: definitive cable identification with confidence — {}",
        if correct { "reproduced" } else { "NOT reproduced" }
    );

    // Negative control: congestion-only scenario must not blame a cable.
    let scenario = toolkit::scenarios::cs4_negative_scenario();
    let registry = toolkit::standard_registry();
    let context = toolkit::catalog::query_context(&scenario.world, scenario.now, 14);
    let model = arachnet::DeterministicExpertModel::new();
    let system = arachnet::ArachNet::new(&model, registry.clone());
    let solution = system
        .generate(CaseStudy::Cs4ForensicRca.query(), &context)
        .expect("generation succeeds");
    let runtime = toolkit::StandardRuntime::new(scenario);
    let report = workflow::execute(&solution.workflow, &registry, &runtime, &solution.query_args());
    let verdict: Option<toolkit::data::VerdictData> = report
        .outputs
        .values()
        .next()
        .and_then(|v| v.parse().ok());
    if let Some(v) = verdict {
        println!(
            "  negative control (congestion only): cable_caused={} — {}",
            v.cable_caused,
            if v.cable_caused { "FALSE POSITIVE" } else { "correctly not blamed" }
        );
    }
}

/// E5 — registry scaling.
fn scaling() {
    header("E5 | Registry scaling — exploration cost vs registry size");
    let sizes = [0usize, 25, 50, 100, 200, 400];
    let curve = registry_scaling_curve(&sizes);
    println!("  {:>10} | {:>12}", "entries", "plan µs");
    for (n, us) in &curve {
        println!("  {n:>10} | {us:>12}");
    }
    let (n0, t0) = curve.first().copied().unwrap();
    let (n1, t1) = curve.last().copied().unwrap();
    println!(
        "  growth: {:.1}x entries -> {:.1}x time (linear-ish expected)",
        n1 as f64 / n0 as f64,
        t1 as f64 / t0.max(1) as f64
    );
}

/// E6 — ensemble confidence.
fn ensemble_report() {
    header("E6 | Ensemble confidence (5 independent generations, CS1 query)");
    let (consensus, agreements) = ensemble_consensus(CaseStudy::Cs1CableImpact, 5);
    println!("  consensus (mean pairwise Jaccard): {consensus:.2}");
    println!("  per-function agreement:");
    for (f, a) in agreements.iter().take(10) {
        println!("    {a:>5.2}  {f}");
    }
}

/// E7 — registry evolution.
fn curator() {
    header("E7 | RegistryCurator — validation-first registry evolution");
    let exp = curation_experiment();
    println!("  composites added: {:?}", exp.added);
    println!("  patterns rejected: {}", exp.rejected);
    println!(
        "  plan size for the repeat query: {} steps before -> {} steps after",
        exp.steps_before, exp.steps_after
    );
}

/// E8 — conflicting tool outputs.
fn conflicts() {
    header("E8 | Conflict resolution — BGP vs traceroute disagreement");
    use arachnet::conflict::{resolve, Claim};
    let claims = vec![
        Claim { source: "bgp.best_path".into(), reliability: 0.9, verdict: "via AS1001".into() },
        Claim {
            source: "traceroute.observed".into(),
            reliability: 0.8,
            verdict: "via AS1002".into(),
        },
        Claim {
            source: "traceroute.mda_sweep".into(),
            reliability: 0.7,
            verdict: "via AS1002".into(),
        },
    ];
    let r = resolve(&claims).expect("claims exist");
    println!("  verdict: {} (confidence {:.2})", r.verdict, r.confidence);
    println!("  conflicted: {}   dissent: {:?}", r.conflicted, r.dissent);
    println!("  explanation: {}", r.explanation);
}
