//! # benchkit — shared evaluation helpers for benches and the report
//! binary.
//!
//! The experiment ids (E1–E8, F1) map to DESIGN.md §4; every function here
//! regenerates one of the paper's evaluation artifacts.

use arachnet::{ensemble, ArachNet, DeterministicExpertModel};
use arachnet_repro::{run_case_study, CaseStudy, CaseStudyRun};
use baselines::metrics;
use toolkit::data::{CountryTableData, TimelineData, VerdictData};
use toolkit::{catalog, scenarios};

/// One row of a case-study comparison (E1–E4).
#[derive(Debug, Clone)]
pub struct CaseStudyRow {
    pub case: usize,
    pub query: String,
    pub paper_loc: usize,
    pub measured_loc: usize,
    pub steps: usize,
    pub frameworks: Vec<String>,
    pub function_overlap_with_expert: f64,
    pub generated_all_ok: bool,
    pub expert_all_ok: bool,
}

/// Runs a case study and summarizes the comparison row.
pub fn case_study_row(case: CaseStudy) -> (CaseStudyRow, CaseStudyRun) {
    let run = run_case_study(case);
    let row = CaseStudyRow {
        case: case.index(),
        query: case.query().to_string(),
        paper_loc: case.paper_loc(),
        measured_loc: run.solution.loc,
        steps: run.solution.workflow.steps.len(),
        frameworks: measurement_frameworks(&run),
        function_overlap_with_expert: metrics::function_overlap(
            &run.solution.workflow,
            &run.expert_workflow,
        ),
        generated_all_ok: run.report.all_ok(),
        expert_all_ok: run.expert_report.all_ok(),
    };
    (row, run)
}

/// The *measurement* frameworks a solution integrates (nautilus, xaminer,
/// bgp, traceroute) — the paper's "4 frameworks" counts these, not the
/// util/qa plumbing.
pub fn measurement_frameworks(run: &CaseStudyRun) -> Vec<String> {
    run.solution
        .frameworks
        .iter()
        .filter(|f| ["nautilus", "xaminer", "bgp", "traceroute"].contains(&f.as_str()))
        .cloned()
        .collect()
}

/// E1/E2 output similarity: generated vs expert country tables.
pub fn country_similarity(run: &CaseStudyRun) -> Option<metrics::CountrySimilarity> {
    let generated: CountryTableData = run.output_as()?;
    let expert: CountryTableData = run.expert_output_as()?;
    Some(metrics::country_table_similarity(&generated, &expert))
}

/// E3 output similarity: generated vs expert unified timelines.
pub fn timeline_similarity(run: &CaseStudyRun) -> Option<f64> {
    let generated: TimelineData = run.output_as()?;
    let expert: TimelineData = run.expert_output_as()?;
    Some(metrics::timeline_alignment(&generated, &expert, 6 * 3600))
}

/// E4: the generated verdict (and the expert one).
pub fn verdicts(run: &CaseStudyRun) -> (Option<VerdictData>, Option<VerdictData>) {
    (run.output_as(), run.expert_output_as())
}

/// E5: registry exploration cost vs registry size. Returns
/// `(registry_size, planner_micros)` pairs for one decomposition planned
/// against registries padded with `n` extra irrelevant entries.
pub fn registry_scaling_curve(sizes: &[usize]) -> Vec<(usize, u128)> {
    use llm::protocol::{DecomposeRequest, QueryContext};
    let scenario = scenarios::cs2_scenario();
    let context = QueryContext {
        cable_names: scenario.world.cables.iter().map(|c| c.name.clone()).collect(),
        now: scenario.now.seconds_since_epoch(),
        horizon_days: 10,
    };
    let mut out = Vec::new();
    for &n in sizes {
        let registry = padded_registry(n);
        let req = DecomposeRequest {
            query: CaseStudy::Cs2DisasterImpact.query().to_string(),
            context: context.clone(),
            registry: registry.clone(),
        };
        let decomposition = llm::expert::decompose(&req);
        // conformance: allow(no-wall-clock, reason = "bench crate measures wall time; E5 times the planner")
        let start = std::time::Instant::now();
        let plan = llm::planner::plan_architecture(&decomposition, &registry, 0)
            .expect("plannable at any padding");
        let micros = start.elapsed().as_micros();
        assert!(!plan.steps.is_empty());
        out.push((registry.len(), micros));
    }
    out
}

/// The standard registry padded with `n` irrelevant (but well-typed)
/// entries, to measure lookup/exploration scaling.
pub fn padded_registry(n: usize) -> registry::Registry {
    use registry::{CapabilityEntry, DataFormat, Param};
    let mut r = catalog::standard_registry();
    for i in 0..n {
        r.register(
            CapabilityEntry::new(
                &format!("pad.tool_{i}"),
                "pad",
                "an unrelated capability for scaling measurements",
                vec![Param::required("table", DataFormat::Table)],
                DataFormat::Table,
            )
            .with_tags(&["padding"]),
        )
        .expect("padding ids are unique");
    }
    r
}

/// E6: ensemble consensus for a case-study query. Members generate
/// through a serving-engine session (sharing one epoch snapshot).
pub fn ensemble_consensus(case: CaseStudy, n: usize) -> (f64, Vec<(String, f64)>) {
    let engine = arachnet_repro::case_study_engine(case);
    let session = engine
        .session(&format!("cs{}", case.index()))
        .expect("scenario registered by case_study_engine");
    let scenario = session.scenario();
    let horizon_days = scenario.horizon.duration().as_seconds() / 86_400;
    let context = catalog::query_context(&scenario.world, scenario.now, horizon_days);
    let report = ensemble::generate_ensemble(&session, case.query(), &context, n)
        .expect("ensemble generation succeeds");
    let agreements = report
        .agreements
        .iter()
        .map(|a| (a.function.clone(), a.agreement))
        .collect();
    (report.consensus, agreements)
}

/// E7: registry evolution — run CS1–CS3, curate, and report what was
/// added plus the before/after plan size for a repeat query.
pub struct CurationExperiment {
    pub added: Vec<String>,
    pub rejected: usize,
    pub steps_before: usize,
    pub steps_after: usize,
}

pub fn curation_experiment() -> CurationExperiment {
    let scenario = scenarios::cs2_scenario();
    let context = catalog::query_context(&scenario.world, scenario.now, 10);
    let model = DeterministicExpertModel::new();
    let mut system = ArachNet::new(&model, catalog::standard_registry());

    let query = CaseStudy::Cs2DisasterImpact.query();
    let before = system.generate(query, &context).expect("generation succeeds");

    // A corpus of successful runs (the paper's "as workflows are built and
    // run successfully, patterns emerge").
    let corpus = vec![before.summary(true), before.summary(true), before.summary(true)];
    let outcome = system.curate(&corpus, 2).expect("curation succeeds");

    let after = system.generate(query, &context).expect("generation succeeds");
    CurationExperiment {
        added: outcome.added.iter().map(|f| f.0.clone()).collect(),
        rejected: outcome.rejected.len(),
        steps_before: before.workflow.steps.len(),
        steps_after: after.workflow.steps.len(),
    }
}

// -- PR 3 serving benchmarks -------------------------------------------------

/// A CPU-bound toy runtime for executor benchmarks: every `work.unit`
/// call burns a deterministic number of hash rounds; `work.mix` folds its
/// inputs. Deterministic, allocation-light, embarrassingly parallel.
pub struct BusyRuntime {
    /// Hash rounds per `work.unit` invocation.
    pub rounds: u64,
}

impl workflow::ToolRuntime for BusyRuntime {
    fn invoke(
        &self,
        function: &registry::FunctionId,
        args: &std::collections::BTreeMap<String, workflow::Value>,
    ) -> Result<workflow::Value, workflow::ToolError> {
        use registry::DataFormat;
        match function.0.as_str() {
            "work.unit" => {
                let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
                for i in 0..self.rounds {
                    acc = acc.wrapping_mul(0x100_0000_01B3).rotate_left(17) ^ i;
                }
                Ok(workflow::Value::new(
                    DataFormat::Scalar,
                    serde_json::json!(acc % 1_000_000),
                ))
            }
            "work.mix" => {
                let mut total: i64 = 0;
                for v in args.values() {
                    total = total.wrapping_add(v.json().as_i64().unwrap_or(0));
                }
                Ok(workflow::Value::new(DataFormat::Scalar, serde_json::json!(total)))
            }
            _ => Err(workflow::ToolError::Unbound(function.clone())),
        }
    }
}

/// A fan-out/fan-in DAG workload: `width` independent `work.unit` steps
/// feeding one `work.mix` reduction — the shape the parallel executor is
/// built for. Returns the registry and the workflow.
pub fn exec_dag_workload(width: usize) -> (registry::Registry, workflow::Workflow) {
    use registry::{CapabilityEntry, DataFormat, Param};
    let mut r = registry::Registry::new();
    r.register(CapabilityEntry::new("work.unit", "work", "burns CPU", vec![], DataFormat::Scalar))
        .expect("unique");
    let inputs: Vec<Param> =
        (0..width).map(|i| Param::optional(&format!("d{i}"), DataFormat::Scalar)).collect();
    r.register(CapabilityEntry::new("work.mix", "work", "folds inputs", inputs, DataFormat::Scalar))
        .expect("unique");

    let mut wf = workflow::Workflow::new("exec-dag", "synthetic fan-out");
    for i in 0..width {
        wf.push(workflow::Step::new(&format!("u{i:02}"), "work.unit"));
    }
    let mut mix = workflow::Step::new("mix", "work.mix");
    for i in 0..width {
        mix = mix.bind_step(&format!("d{i}"), &format!("u{i:02}"));
    }
    wf.push(mix);
    (r, wf.with_output("mix"))
}

/// Serves `queries` identical queries end-to-end (generate + execute)
/// through a fresh engine with at most `threads` sessions in flight.
///
/// With `shared_store` the queries hit one scenario key, so every session
/// shares that scenario's artifact store (the engine's serving model);
/// without it each query gets its own key and therefore a cold private
/// store — the pre-engine batch-of-one behaviour, where every
/// `StandardRuntime::new` recomputed the mapping run from scratch.
///
/// Returns the total output count as a black-box guard.
pub fn serve_sessions(
    scenario: &world::Scenario,
    query: &str,
    queries: usize,
    shared_store: bool,
    threads: usize,
) -> usize {
    let engine = arachnet::Engine::new(
        std::sync::Arc::new(DeterministicExpertModel::new()),
        catalog::standard_registry(),
    );
    let keys: Vec<String> = if shared_store {
        engine.register_scenario("shared", scenario.clone());
        vec!["shared".to_string(); queries]
    } else {
        (0..queries)
            .map(|i| {
                let key = format!("cold{i}");
                engine.register_scenario(&key, scenario.clone());
                key
            })
            .collect()
    };
    let next = std::sync::atomic::AtomicUsize::new(0);
    let outputs = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.clamp(1, keys.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(key) = keys.get(i) else { return };
                let session = engine.session(key).expect("registered");
                let scenario = session.scenario();
                let horizon_days = scenario.horizon.duration().as_seconds() / 86_400;
                let context =
                    catalog::query_context(&scenario.world, scenario.now, horizon_days);
                let run = session.run(query, &context).expect("query serves");
                assert!(run.report.all_ok(), "qa: {:?}", run.report.qa);
                outputs.fetch_add(
                    run.report.outputs.len(),
                    std::sync::atomic::Ordering::Relaxed,
                );
            });
        }
    });
    outputs.load(std::sync::atomic::Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_registry_grows() {
        let base = catalog::standard_registry().len();
        assert_eq!(padded_registry(10).len(), base + 10);
    }

    #[test]
    fn exec_dag_workload_runs_identically_at_any_width() {
        let (registry, wf) = exec_dag_workload(6);
        let runtime = BusyRuntime { rounds: 10 };
        let args = std::collections::BTreeMap::new();
        let one = workflow::execute_with(
            &wf, &registry, &runtime, &args,
            &workflow::ExecOptions { workers: 1, ..Default::default() },
        );
        let many = workflow::execute_with(
            &wf, &registry, &runtime, &args,
            &workflow::ExecOptions { workers: 8, ..Default::default() },
        );
        assert!(one.all_ok());
        assert_eq!(one, many);
    }

    #[test]
    fn concurrent_sessions_serve_all_queries() {
        let scenario = toolkit::scenarios::cs1_scenario();
        let query = "Identify the impact at a country level due to SeaMeWe-5 cable failure";
        assert_eq!(serve_sessions(&scenario, query, 2, true, 2), 2);
        assert_eq!(serve_sessions(&scenario, query, 2, false, 1), 2);
    }

    #[test]
    fn scaling_curve_has_requested_points() {
        let curve = registry_scaling_curve(&[0, 20]);
        assert_eq!(curve.len(), 2);
        assert!(curve[1].0 > curve[0].0);
    }
}
