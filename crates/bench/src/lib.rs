//! # benchkit — shared evaluation helpers for benches and the report
//! binary.
//!
//! The experiment ids (E1–E8, F1) map to DESIGN.md §4; every function here
//! regenerates one of the paper's evaluation artifacts.

use arachnet::{ensemble, ArachNet, DeterministicExpertModel};
use arachnet_repro::{run_case_study, CaseStudy, CaseStudyRun};
use baselines::metrics;
use toolkit::data::{CountryTableData, TimelineData, VerdictData};
use toolkit::{catalog, scenarios};

/// One row of a case-study comparison (E1–E4).
#[derive(Debug, Clone)]
pub struct CaseStudyRow {
    pub case: usize,
    pub query: String,
    pub paper_loc: usize,
    pub measured_loc: usize,
    pub steps: usize,
    pub frameworks: Vec<String>,
    pub function_overlap_with_expert: f64,
    pub generated_all_ok: bool,
    pub expert_all_ok: bool,
}

/// Runs a case study and summarizes the comparison row.
pub fn case_study_row(case: CaseStudy) -> (CaseStudyRow, CaseStudyRun) {
    let run = run_case_study(case);
    let row = CaseStudyRow {
        case: case.index(),
        query: case.query().to_string(),
        paper_loc: case.paper_loc(),
        measured_loc: run.solution.loc,
        steps: run.solution.workflow.steps.len(),
        frameworks: measurement_frameworks(&run),
        function_overlap_with_expert: metrics::function_overlap(
            &run.solution.workflow,
            &run.expert_workflow,
        ),
        generated_all_ok: run.report.all_ok(),
        expert_all_ok: run.expert_report.all_ok(),
    };
    (row, run)
}

/// The *measurement* frameworks a solution integrates (nautilus, xaminer,
/// bgp, traceroute) — the paper's "4 frameworks" counts these, not the
/// util/qa plumbing.
pub fn measurement_frameworks(run: &CaseStudyRun) -> Vec<String> {
    run.solution
        .frameworks
        .iter()
        .filter(|f| ["nautilus", "xaminer", "bgp", "traceroute"].contains(&f.as_str()))
        .cloned()
        .collect()
}

/// E1/E2 output similarity: generated vs expert country tables.
pub fn country_similarity(run: &CaseStudyRun) -> Option<metrics::CountrySimilarity> {
    let generated: CountryTableData = run.output_as()?;
    let expert: CountryTableData = run.expert_output_as()?;
    Some(metrics::country_table_similarity(&generated, &expert))
}

/// E3 output similarity: generated vs expert unified timelines.
pub fn timeline_similarity(run: &CaseStudyRun) -> Option<f64> {
    let generated: TimelineData = run.output_as()?;
    let expert: TimelineData = run.expert_output_as()?;
    Some(metrics::timeline_alignment(&generated, &expert, 6 * 3600))
}

/// E4: the generated verdict (and the expert one).
pub fn verdicts(run: &CaseStudyRun) -> (Option<VerdictData>, Option<VerdictData>) {
    (run.output_as(), run.expert_output_as())
}

/// E5: registry exploration cost vs registry size. Returns
/// `(registry_size, planner_micros)` pairs for one decomposition planned
/// against registries padded with `n` extra irrelevant entries.
pub fn registry_scaling_curve(sizes: &[usize]) -> Vec<(usize, u128)> {
    use llm::protocol::{DecomposeRequest, QueryContext};
    let scenario = scenarios::cs2_scenario();
    let context = QueryContext {
        cable_names: scenario.world.cables.iter().map(|c| c.name.clone()).collect(),
        now: scenario.now.seconds_since_epoch(),
        horizon_days: 10,
    };
    let mut out = Vec::new();
    for &n in sizes {
        let registry = padded_registry(n);
        let req = DecomposeRequest {
            query: CaseStudy::Cs2DisasterImpact.query().to_string(),
            context: context.clone(),
            registry: registry.clone(),
        };
        let decomposition = llm::expert::decompose(&req);
        let start = std::time::Instant::now();
        let plan = llm::planner::plan_architecture(&decomposition, &registry, 0)
            .expect("plannable at any padding");
        let micros = start.elapsed().as_micros();
        assert!(!plan.steps.is_empty());
        out.push((registry.len(), micros));
    }
    out
}

/// The standard registry padded with `n` irrelevant (but well-typed)
/// entries, to measure lookup/exploration scaling.
pub fn padded_registry(n: usize) -> registry::Registry {
    use registry::{CapabilityEntry, DataFormat, Param};
    let mut r = catalog::standard_registry();
    for i in 0..n {
        r.register(
            CapabilityEntry::new(
                &format!("pad.tool_{i}"),
                "pad",
                "an unrelated capability for scaling measurements",
                vec![Param::required("table", DataFormat::Table)],
                DataFormat::Table,
            )
            .with_tags(&["padding"]),
        )
        .expect("padding ids are unique");
    }
    r
}

/// E6: ensemble consensus for a case-study query.
pub fn ensemble_consensus(case: CaseStudy, n: usize) -> (f64, Vec<(String, f64)>) {
    let scenario = case.scenario();
    let horizon_days = scenario.horizon.duration().as_seconds() / 86_400;
    let context = catalog::query_context(&scenario.world, scenario.now, horizon_days);
    let model = DeterministicExpertModel::new();
    let system = ArachNet::new(&model, case.registry());
    let report = ensemble::generate_ensemble(&system, case.query(), &context, n)
        .expect("ensemble generation succeeds");
    let agreements = report
        .agreements
        .iter()
        .map(|a| (a.function.clone(), a.agreement))
        .collect();
    (report.consensus, agreements)
}

/// E7: registry evolution — run CS1–CS3, curate, and report what was
/// added plus the before/after plan size for a repeat query.
pub struct CurationExperiment {
    pub added: Vec<String>,
    pub rejected: usize,
    pub steps_before: usize,
    pub steps_after: usize,
}

pub fn curation_experiment() -> CurationExperiment {
    let scenario = scenarios::cs2_scenario();
    let context = catalog::query_context(&scenario.world, scenario.now, 10);
    let model = DeterministicExpertModel::new();
    let mut system = ArachNet::new(&model, catalog::standard_registry());

    let query = CaseStudy::Cs2DisasterImpact.query();
    let before = system.generate(query, &context).expect("generation succeeds");

    // A corpus of successful runs (the paper's "as workflows are built and
    // run successfully, patterns emerge").
    let corpus = vec![before.summary(true), before.summary(true), before.summary(true)];
    let outcome = system.curate(&corpus, 2).expect("curation succeeds");

    let after = system.generate(query, &context).expect("generation succeeds");
    CurationExperiment {
        added: outcome.added.iter().map(|f| f.0.clone()).collect(),
        rejected: outcome.rejected.len(),
        steps_before: before.workflow.steps.len(),
        steps_after: after.workflow.steps.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_registry_grows() {
        let base = catalog::standard_registry().len();
        assert_eq!(padded_registry(10).len(), base + 10);
    }

    #[test]
    fn scaling_curve_has_requested_points() {
        let curve = registry_scaling_curve(&[0, 20]);
        assert_eq!(curve.len(), 2);
        assert!(curve[1].0 > curve[0].0);
    }
}
