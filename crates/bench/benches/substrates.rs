//! Criterion benches for the measurement substrates: world generation,
//! BGP route computation, the Nautilus mapping run, Xaminer event
//! processing and cascade propagation, and traceroute measurement — the
//! cost centres behind every case-study execution.

use criterion::{criterion_group, criterion_main, Criterion};

use nautilus_sim::{DependencyTable, MappingConfig, NautilusMapper};
use world::{generate, Scenario, WorldConfig};
use xaminer_sim::{CascadeConfig, FailureEvent, XaminerEngine};

fn bench_world(c: &mut Criterion) {
    let mut group = c.benchmark_group("world");
    group.sample_size(10);
    group.bench_function("generate_default", |b| {
        b.iter(|| std::hint::black_box(generate(&WorldConfig::default()).links.len()))
    });
    group.finish();
}

fn bench_bgp(c: &mut Criterion) {
    let world = generate(&WorldConfig::default());
    let scenario = Scenario::quiet(world, 10);
    let mut group = c.benchmark_group("bgp");
    group.sample_size(10);
    group.bench_function("full_routing_table", |b| {
        b.iter(|| {
            let graph = bgp_sim::AsGraph::at_time(&scenario, net_model::SimTime::EPOCH);
            let table = bgp_sim::RoutingTable::compute(&graph, &scenario.world);
            std::hint::black_box(table.reachable_from(scenario.world.ases[0].asn))
        })
    });
    group.finish();
}

fn bench_nautilus(c: &mut Criterion) {
    let world = generate(&WorldConfig::default());
    let mut group = c.benchmark_group("nautilus");
    group.sample_size(10);
    group.bench_function("map_world", |b| {
        b.iter(|| {
            let table = NautilusMapper::new(MappingConfig::default()).map_world(&world);
            std::hint::black_box(table.mapped_count())
        })
    });
    group.finish();
}

fn bench_xaminer(c: &mut Criterion) {
    let world = generate(&WorldConfig::default());
    let engine = XaminerEngine::oracle(&world);
    let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
    let mut group = c.benchmark_group("xaminer");
    group.bench_function("event_impact_report", |b| {
        b.iter(|| {
            let report = engine.impact_report(&FailureEvent::CableFailure { cable });
            std::hint::black_box(report.total_links)
        })
    });
    group.bench_function("cascade", |b| {
        let initial = engine.process(&FailureEvent::CableFailure { cable });
        let config = CascadeConfig { base_load: 0.75, ..CascadeConfig::default() };
        b.iter(|| {
            let tl = xaminer_sim::cascade::propagate(&world, &initial, &config);
            std::hint::black_box(tl.depth())
        })
    });
    group.finish();
}

fn bench_traceroute(c: &mut Criterion) {
    let world = generate(&WorldConfig::default());
    let scenario = Scenario::quiet(world, 10);
    let sim = traceroute_sim::TracerouteSimulator::new(&scenario);
    let probe = scenario.world.probes[0].id;
    let dst = scenario.world.prefixes[100].net.host(1);
    let mut group = c.benchmark_group("traceroute");
    group.bench_function("single_measurement", |b| {
        b.iter(|| {
            let tr = sim.measure(probe, dst, net_model::SimTime(3600), 0);
            std::hint::black_box(tr.hops.len())
        })
    });
    group.finish();
}

fn bench_dependency_table(c: &mut Criterion) {
    let world = generate(&WorldConfig::default());
    let mapping = NautilusMapper::new(MappingConfig::default()).map_world(&world);
    let mut group = c.benchmark_group("dependency");
    group.bench_function("from_mapping", |b| {
        b.iter(|| {
            let deps = DependencyTable::from_mapping(&world, &mapping, 0.2);
            std::hint::black_box(deps.cables().len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_world,
    bench_bgp,
    bench_nautilus,
    bench_xaminer,
    bench_traceroute,
    bench_dependency_table
);
criterion_main!(benches);
