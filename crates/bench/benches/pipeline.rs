//! Criterion benches for the agent pipeline: workflow generation latency
//! per case study (E1–E4's "minutes instead of days" claim — here,
//! milliseconds instead of days) and ensemble generation (E6).

use criterion::{criterion_group, criterion_main, Criterion};

use arachnet::{ensemble, ArachNet, DeterministicExpertModel};
use arachnet_repro::CaseStudy;
use toolkit::catalog;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    for case in CaseStudy::ALL {
        let scenario = case.scenario();
        let horizon_days = scenario.horizon.duration().as_seconds() / 86_400;
        let context = catalog::query_context(&scenario.world, scenario.now, horizon_days);
        let registry = case.registry();
        let model = DeterministicExpertModel::new();
        let system = ArachNet::new(&model, registry);
        group.bench_function(format!("cs{}", case.index()), |b| {
            b.iter(|| {
                let solution =
                    system.generate(case.query(), &context).expect("generation succeeds");
                std::hint::black_box(solution.loc)
            })
        });
    }
    group.finish();
}

fn bench_ensemble(c: &mut Criterion) {
    let case = CaseStudy::Cs1CableImpact;
    let scenario = case.scenario();
    let context = catalog::query_context(&scenario.world, scenario.now, 10);
    let registry = case.registry();
    let model = DeterministicExpertModel::new();
    let system = ArachNet::new(&model, registry);
    let mut group = c.benchmark_group("ensemble");
    group.sample_size(10);
    group.bench_function("cs1_x5", |b| {
        b.iter(|| {
            let report = ensemble::generate_ensemble(&system, case.query(), &context, 5)
                .expect("ensemble succeeds");
            std::hint::black_box(report.consensus)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_ensemble);
criterion_main!(benches);
