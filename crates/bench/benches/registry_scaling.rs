//! E5 — the registry's "scales linearly with available tools" claim:
//! planning latency as the registry grows with unrelated entries, plus
//! search latency over the same sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use arachnet_repro::CaseStudy;
use llm::protocol::{DecomposeRequest, QueryContext};

fn bench_planning_vs_registry_size(c: &mut Criterion) {
    let context = QueryContext {
        cable_names: vec!["SeaMeWe-5".into()],
        now: 10 * 86_400,
        horizon_days: 10,
    };
    let mut group = c.benchmark_group("registry_scaling/plan");
    group.sample_size(10);
    for pad in [0usize, 50, 100, 200, 400] {
        let registry = benchkit::padded_registry(pad);
        let decomposition = llm::expert::decompose(&DecomposeRequest {
            query: CaseStudy::Cs2DisasterImpact.query().to_string(),
            context: context.clone(),
            registry: registry.clone(),
        });
        group.bench_with_input(BenchmarkId::from_parameter(registry.len()), &pad, |b, _| {
            b.iter(|| {
                let plan = llm::planner::plan_architecture(&decomposition, &registry, 0)
                    .expect("plannable");
                std::hint::black_box(plan.steps.len())
            })
        });
    }
    group.finish();
}

fn bench_search_vs_registry_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry_scaling/search");
    for pad in [0usize, 100, 400] {
        let registry = benchkit::padded_registry(pad);
        group.bench_with_input(BenchmarkId::from_parameter(registry.len()), &pad, |b, _| {
            b.iter(|| {
                let hits = registry.search("rank suspect cables by latency evidence", 5);
                std::hint::black_box(hits.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planning_vs_registry_size, bench_search_vs_registry_size);
criterion_main!(benches);
