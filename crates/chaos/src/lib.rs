//! # chaos — deterministic fault injection for workflow runtimes
//!
//! The resilience machinery in `workflow::exec` (retries, degradation)
//! and `toolkit` (circuit breakers, fallbacks) is only testable if the
//! failures it guards against can be produced *on demand and
//! reproducibly*. This crate provides that: a seeded, logical-time
//! [`FaultPlan`] and a [`ChaosRuntime`] wrapper that injects the planned
//! faults into any [`ToolRuntime`].
//!
//! Everything is a pure function of `(seed, function_id, invocation
//! key)` — no `Instant`, no thread rng, no wall clock — so a chaos run
//! is bit-identical across reruns and across executor worker counts:
//!
//! * scheduled faults key on the *function id* and the *attempt index*
//!   the executor hands down via [`InvokeContext`], never on arrival
//!   order;
//! * background faults hash `(seed, function, step, attempt)` through a
//!   splitmix64-style mixer and compare against a parts-per-million
//!   threshold;
//! * slow-step costs are logical ticks accumulated in [`ChaosStats`],
//!   not sleeps.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use registry::{DataFormat, FunctionId};
use telemetry::{EventKind, Recorder};
use workflow::exec::{InvokeContext, ToolError, ToolRuntime, Value};

/// What kind of fault a function is scheduled to exhibit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The first `failures` attempts of every invocation fail with
    /// `transient: true`; attempt `failures` onward succeeds. A retry
    /// budget of at least `failures` rides through this fault.
    Transient { failures: u32 },
    /// Every invocation fails with `transient: false` — retries are
    /// pointless, only degradation or a fallback helps.
    Persistent,
    /// The inner tool runs, but its output is replaced with a malformed
    /// text payload — exercising the woven-in QA format check and
    /// downstream argument validation.
    Corrupt,
    /// The invocation succeeds but charges `ticks` logical ticks to
    /// [`ChaosStats::slow_ticks`] (a logical-time stand-in for a slow
    /// tool; no wall-clock sleep is ever performed).
    Slow { ticks: u64 },
}

/// A seeded, deterministic fault schedule.
///
/// Per-function faults fire on every invocation of that function;
/// background faults fire pseudo-randomly (but reproducibly) across all
/// functions at a parts-per-million rate derived from the seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for background-fault hashing.
    pub seed: u64,
    /// function id → scheduled fault.
    pub faults: BTreeMap<FunctionId, FaultKind>,
    /// Background transient-failure rate, in failures per million
    /// invocations (0 disables background faults).
    pub background_failure_ppm: u32,
}

impl FaultPlan {
    /// An empty plan: no faults at all. Wrapping a runtime with an empty
    /// plan must be behaviorally identical to the bare runtime.
    pub fn empty() -> FaultPlan {
        FaultPlan::new(0)
    }

    /// A plan with a seed and no scheduled faults.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, faults: BTreeMap::new(), background_failure_ppm: 0 }
    }

    /// Schedules a fault for a function.
    pub fn with_fault(mut self, function: &str, kind: FaultKind) -> FaultPlan {
        self.faults.insert(FunctionId::from(function), kind);
        self
    }

    /// Enables background transient failures at `ppm` per million.
    pub fn with_background_failures(mut self, ppm: u32) -> FaultPlan {
        self.background_failure_ppm = ppm;
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.background_failure_ppm == 0
    }

    /// Whether a background fault fires for this invocation key. Pure
    /// function of the plan seed and the key — identical across worker
    /// counts and reruns.
    fn background_fires(&self, function: &FunctionId, salt: &str, attempt: u32) -> bool {
        if self.background_failure_ppm == 0 {
            return false;
        }
        let mut h = mix(self.seed ^ 0x0063_6861_6f73); // "chaos"
        h = fold(h, function.0.as_bytes());
        h = fold(h, salt.as_bytes());
        h = mix(h ^ u64::from(attempt));
        h % 1_000_000 < u64::from(self.background_failure_ppm)
    }
}

/// splitmix64 finalizer: cheap, well-distributed, dependency-free.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e9b5);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Folds bytes into a hash state through the mixer.
fn fold(h: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(h, |acc, &b| mix(acc ^ u64::from(b)))
}

/// Counters of what the chaos layer actually did. Totals are
/// order-independent sums, so they too are deterministic for a given
/// plan and workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Invocations that passed through unmodified.
    pub passthrough: u64,
    /// Failures injected (scheduled + background).
    pub injected_failures: u64,
    /// Outputs replaced with malformed payloads.
    pub corrupted_outputs: u64,
    /// Logical ticks charged by `Slow` faults.
    pub slow_ticks: u64,
}

/// Wraps any [`ToolRuntime`] and injects the faults a [`FaultPlan`]
/// schedules.
///
/// Under the executor (which always calls [`ToolRuntime::invoke_with`]),
/// injection keys on `(step, attempt)` and is therefore bit-identical at
/// any worker count. The plain [`ToolRuntime::invoke`] path keeps a
/// per-function invocation counter instead — deterministic for
/// sequential callers, which is what direct invocation is.
pub struct ChaosRuntime<R> {
    inner: R,
    plan: FaultPlan,
    stats: Mutex<ChaosStats>,
    /// Invocation counters for the context-free `invoke` path.
    counters: Mutex<BTreeMap<FunctionId, u32>>,
    /// Optional telemetry sink: injection decisions become trace events.
    recorder: Option<Arc<Recorder>>,
}

impl<R: ToolRuntime> ChaosRuntime<R> {
    pub fn new(inner: R, plan: FaultPlan) -> ChaosRuntime<R> {
        ChaosRuntime {
            inner,
            plan,
            stats: Mutex::new(ChaosStats::default()),
            counters: Mutex::new(BTreeMap::new()),
            recorder: None,
        }
    }

    /// Attach a telemetry recorder: every injection decision is buffered
    /// as a trace event keyed by `(step, attempt)` — deterministic,
    /// because injection itself is a pure function of that key.
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> ChaosRuntime<R> {
        self.recorder = Some(recorder);
        self
    }

    /// The wrapped runtime.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// A snapshot of the injection counters.
    pub fn stats(&self) -> ChaosStats {
        *self.stats.lock()
    }

    /// Buffer a trace event for the invocation `(salt, attempt)` when the
    /// call has executor context, or just count it when it does not.
    fn note(&self, has_context: bool, salt: &str, attempt: u32, kind: EventKind) {
        if let Some(recorder) = &self.recorder {
            if has_context {
                recorder.emit_invocation(salt, attempt, kind);
            } else {
                recorder.count_event(&kind);
            }
        }
    }

    fn injected_failure(&self, function: &FunctionId, transient: bool) -> ToolError {
        self.stats.lock().injected_failures += 1;
        let flavor = if transient { "transient" } else { "persistent" };
        ToolError::Failed {
            function: function.clone(),
            message: format!("chaos: injected {flavor} failure"),
            transient,
        }
    }

    /// The shared injection path. `salt` distinguishes invocation sites
    /// (step id under the executor, synthetic counter otherwise);
    /// `attempt` is the retry attempt for scheduled transient faults.
    fn dispatch(
        &self,
        has_context: bool,
        salt: &str,
        attempt: u32,
        function: &FunctionId,
        args: &BTreeMap<String, Value>,
        call: impl FnOnce(&R) -> Result<Value, ToolError>,
    ) -> Result<Value, ToolError> {
        let _ = args;
        match self.plan.faults.get(function) {
            Some(FaultKind::Transient { failures }) if attempt < *failures => {
                self.note(
                    has_context,
                    salt,
                    attempt,
                    EventKind::FaultInjected { function: function.to_string(), transient: true },
                );
                return Err(self.injected_failure(function, true));
            }
            Some(FaultKind::Persistent) => {
                self.note(
                    has_context,
                    salt,
                    attempt,
                    EventKind::FaultInjected { function: function.to_string(), transient: false },
                );
                return Err(self.injected_failure(function, false));
            }
            Some(FaultKind::Corrupt) => {
                let _ = call(&self.inner)?;
                self.stats.lock().corrupted_outputs += 1;
                self.note(
                    has_context,
                    salt,
                    attempt,
                    EventKind::OutputCorrupted { function: function.to_string() },
                );
                return Ok(Value::new(
                    DataFormat::Text,
                    serde_json::json!(format!("chaos: corrupted output of {function}")),
                ));
            }
            Some(FaultKind::Slow { ticks }) => {
                self.stats.lock().slow_ticks += ticks;
                self.note(
                    has_context,
                    salt,
                    attempt,
                    EventKind::SlowTicks { function: function.to_string(), ticks: *ticks },
                );
            }
            Some(FaultKind::Transient { .. }) | None => {}
        }
        if self.plan.background_fires(function, salt, attempt) {
            self.note(
                has_context,
                salt,
                attempt,
                EventKind::FaultInjected { function: function.to_string(), transient: true },
            );
            return Err(self.injected_failure(function, true));
        }
        self.stats.lock().passthrough += 1;
        call(&self.inner)
    }
}

impl<R: ToolRuntime> ToolRuntime for ChaosRuntime<R> {
    fn invoke(
        &self,
        function: &FunctionId,
        args: &BTreeMap<String, Value>,
    ) -> Result<Value, ToolError> {
        let index = {
            let mut counters = self.counters.lock();
            let slot = counters.entry(function.clone()).or_insert(0);
            let index = *slot;
            *slot += 1;
            index
        };
        self.dispatch(false, &format!("#{index}"), index, function, args, |inner| {
            inner.invoke(function, args)
        })
    }

    fn invoke_with(
        &self,
        ctx: &InvokeContext<'_>,
        function: &FunctionId,
        args: &BTreeMap<String, Value>,
    ) -> Result<Value, ToolError> {
        self.dispatch(true, &ctx.step.0, ctx.attempt, function, args, |inner| {
            inner.invoke_with(ctx, function, args)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workflow::StepId;

    struct EchoRuntime;

    impl ToolRuntime for EchoRuntime {
        fn invoke(
            &self,
            function: &FunctionId,
            _args: &BTreeMap<String, Value>,
        ) -> Result<Value, ToolError> {
            Ok(Value::new(DataFormat::Table, serde_json::json!([function.0.as_str()])))
        }
    }

    fn ctx(step: &StepId, attempt: u32) -> InvokeContext<'_> {
        InvokeContext { step, attempt }
    }

    #[test]
    fn empty_plan_passes_through() {
        let rt = ChaosRuntime::new(EchoRuntime, FaultPlan::empty());
        let step = StepId::from("s");
        let out = rt.invoke_with(&ctx(&step, 0), &FunctionId::from("f.x"), &BTreeMap::new());
        assert!(out.is_ok());
        let stats = rt.stats();
        assert_eq!(stats.passthrough, 1);
        assert_eq!(stats.injected_failures, 0);
    }

    #[test]
    fn transient_fault_clears_after_scheduled_failures() {
        let plan = FaultPlan::new(7).with_fault("f.x", FaultKind::Transient { failures: 2 });
        let rt = ChaosRuntime::new(EchoRuntime, plan);
        let step = StepId::from("s");
        let f = FunctionId::from("f.x");
        for attempt in 0..2 {
            let err = rt.invoke_with(&ctx(&step, attempt), &f, &BTreeMap::new());
            assert!(
                matches!(err, Err(ToolError::Failed { transient: true, .. })),
                "attempt {attempt} must fail transiently"
            );
        }
        assert!(rt.invoke_with(&ctx(&step, 2), &f, &BTreeMap::new()).is_ok());
        assert_eq!(rt.stats().injected_failures, 2);
    }

    #[test]
    fn persistent_fault_never_clears() {
        let plan = FaultPlan::new(7).with_fault("f.x", FaultKind::Persistent);
        let rt = ChaosRuntime::new(EchoRuntime, plan);
        let step = StepId::from("s");
        for attempt in [0, 5, 50] {
            let err = rt.invoke_with(&ctx(&step, attempt), &FunctionId::from("f.x"), &BTreeMap::new());
            assert!(matches!(err, Err(ToolError::Failed { transient: false, .. })));
        }
        // Other functions are untouched.
        assert!(rt.invoke_with(&ctx(&step, 0), &FunctionId::from("f.y"), &BTreeMap::new()).is_ok());
    }

    #[test]
    fn corrupt_fault_yields_malformed_text() {
        let plan = FaultPlan::new(7).with_fault("f.x", FaultKind::Corrupt);
        let rt = ChaosRuntime::new(EchoRuntime, plan);
        let step = StepId::from("s");
        let out = rt.invoke_with(&ctx(&step, 0), &FunctionId::from("f.x"), &BTreeMap::new()).unwrap();
        assert_eq!(out.format, DataFormat::Text);
        assert_eq!(rt.stats().corrupted_outputs, 1);
    }

    #[test]
    fn slow_fault_charges_logical_ticks_only() {
        let plan = FaultPlan::new(7).with_fault("f.x", FaultKind::Slow { ticks: 40 });
        let rt = ChaosRuntime::new(EchoRuntime, plan);
        let step = StepId::from("s");
        let f = FunctionId::from("f.x");
        assert!(rt.invoke_with(&ctx(&step, 0), &f, &BTreeMap::new()).is_ok());
        assert!(rt.invoke_with(&ctx(&step, 0), &f, &BTreeMap::new()).is_ok());
        assert_eq!(rt.stats().slow_ticks, 80);
    }

    #[test]
    fn background_faults_are_a_pure_function_of_the_key() {
        let plan = FaultPlan::new(42).with_background_failures(250_000);
        let step_a = StepId::from("a");
        let f = FunctionId::from("f.x");
        // Same key → same verdict, across fresh runtimes.
        let first: Vec<bool> = (0..64)
            .map(|i| {
                let rt = ChaosRuntime::new(EchoRuntime, plan.clone());
                rt.invoke_with(&ctx(&step_a, i), &f, &BTreeMap::new()).is_ok()
            })
            .collect();
        let second: Vec<bool> = (0..64)
            .map(|i| {
                let rt = ChaosRuntime::new(EchoRuntime, plan.clone());
                rt.invoke_with(&ctx(&step_a, i), &f, &BTreeMap::new()).is_ok()
            })
            .collect();
        assert_eq!(first, second);
        // At 25% ppm over 64 keys, both outcomes should occur.
        assert!(first.iter().any(|ok| *ok));
        assert!(first.iter().any(|ok| !*ok));
        // A different seed draws a different schedule.
        let other = FaultPlan::new(43).with_background_failures(250_000);
        let third: Vec<bool> = (0..64)
            .map(|i| {
                let rt = ChaosRuntime::new(EchoRuntime, other.clone());
                rt.invoke_with(&ctx(&step_a, i), &f, &BTreeMap::new()).is_ok()
            })
            .collect();
        assert_ne!(first, third);
    }

    #[test]
    fn context_free_invoke_counts_invocations() {
        let plan = FaultPlan::new(7).with_fault("f.x", FaultKind::Transient { failures: 1 });
        let rt = ChaosRuntime::new(EchoRuntime, plan);
        let f = FunctionId::from("f.x");
        assert!(rt.invoke(&f, &BTreeMap::new()).is_err(), "first invocation fails");
        assert!(rt.invoke(&f, &BTreeMap::new()).is_ok(), "counter advances past the fault");
    }
}
