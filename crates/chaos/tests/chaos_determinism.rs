//! The chaos suite: for arbitrary generated DAGs *and* arbitrary
//! generated fault plans, execution under a [`ChaosRuntime`]
//!
//! * never panics — every injected fault surfaces as a structured
//!   [`StepResult`] / [`RunHealth`] outcome;
//! * is byte-identical across 1, 2 and 8 executor workers;
//! * is byte-identical across reruns with the same seed (fresh runtime,
//!   fresh counters).
//!
//! A fixed seed matrix rides along for CI: the same properties checked
//! on pinned seeds, so a regression is reproducible from the failure
//! message alone.

use std::collections::BTreeMap;

use proptest::prelude::*;

use chaos::{ChaosRuntime, FaultKind, FaultPlan};
use registry::{CapabilityEntry, DataFormat, FunctionId, Param, Registry};
use workflow::{
    execute_with, ExecOptions, ExecutionReport, RetryPolicy, RunHealth, Step, ToolError,
    ToolRuntime, Value, Workflow,
};

/// The three workable functions fault plans can target.
const FUNCTIONS: [&str; 3] = ["c.alpha", "c.beta", "c.gamma"];

fn chaos_registry() -> Registry {
    let deps: Vec<Param> =
        (0..8).map(|i| Param::optional(&format!("d{i}"), DataFormat::Table)).collect();
    let mut r = Registry::new();
    for id in FUNCTIONS {
        r.register(CapabilityEntry::new(id, "chaos", "toy", deps.clone(), DataFormat::Table))
            .unwrap();
    }
    r
}

/// Deterministic base runtime: concatenates input tables and tags the
/// output with the function name.
struct BaseRuntime;

impl ToolRuntime for BaseRuntime {
    fn invoke(
        &self,
        function: &FunctionId,
        args: &BTreeMap<String, Value>,
    ) -> Result<Value, ToolError> {
        let mut rows: Vec<serde_json::Value> = Vec::new();
        for (name, v) in args {
            if let Some(a) = v.json().as_array() {
                rows.extend(a.iter().cloned());
            }
            rows.push(serde_json::Value::String(name.clone()));
        }
        rows.push(serde_json::Value::String(function.0.clone()));
        Ok(Value::new(DataFormat::Table, serde_json::Value::Array(rows)))
    }
}

#[derive(Debug, Clone)]
struct StepSpec {
    /// Index into [`FUNCTIONS`].
    function: usize,
    /// Bitmask over earlier steps.
    deps: u8,
    critical: bool,
}

fn step_spec() -> impl Strategy<Value = StepSpec> {
    (0usize..FUNCTIONS.len(), any::<u8>(), any::<bool>())
        .prop_map(|(function, deps, critical)| StepSpec { function, deps, critical })
}

fn fault_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        (1u32..4).prop_map(|failures| FaultKind::Transient { failures }),
        Just(FaultKind::Persistent),
        Just(FaultKind::Corrupt),
        (1u64..100).prop_map(|ticks| FaultKind::Slow { ticks }),
    ]
}

fn maybe_fault() -> impl Strategy<Value = Option<FaultKind>> {
    prop_oneof![Just(None), fault_kind().prop_map(Some)]
}

fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        proptest::collection::vec(maybe_fault(), FUNCTIONS.len()),
        0u32..300_000,
    )
        .prop_map(|(seed, kinds, ppm)| {
            let mut plan = FaultPlan::new(seed).with_background_failures(ppm);
            for (i, kind) in kinds.into_iter().enumerate() {
                if let Some(kind) = kind {
                    plan = plan.with_fault(FUNCTIONS[i], kind);
                }
            }
            plan
        })
}

fn build_workflow(specs: &[StepSpec]) -> Workflow {
    let mut wf = Workflow::new("chaos-dag", "generated");
    for (i, spec) in specs.iter().enumerate() {
        let mut step = Step::new(&format!("s{i:02}"), FUNCTIONS[spec.function]);
        if !spec.critical {
            step = step.non_critical();
        }
        for j in 0..i.min(8) {
            if spec.deps & (1 << j) != 0 {
                step = step.bind_step(&format!("d{j}"), &format!("s{j:02}"));
            }
        }
        wf.push(step);
    }
    for i in 0..specs.len() {
        wf = wf.with_output(&format!("s{i:02}"));
    }
    wf
}

/// One full chaos execution with a fresh runtime (fresh counters/stats).
fn run(
    wf: &Workflow,
    registry: &Registry,
    plan: &FaultPlan,
    workers: usize,
    retry: RetryPolicy,
) -> (ExecutionReport, chaos::ChaosStats) {
    let runtime = ChaosRuntime::new(BaseRuntime, plan.clone());
    let report = execute_with(
        wf,
        registry,
        &runtime,
        &BTreeMap::new(),
        &ExecOptions { workers, retry, recorder: None },
    );
    (report, runtime.stats())
}

/// The invariants every chaos execution must satisfy, regardless of the
/// generated plan: faults surface structurally, health is consistent
/// with the counters, and injected failures are `ToolError::Failed`.
fn assert_structured(report: &ExecutionReport) {
    if report.failed == 0 && report.poisoned == 0 {
        assert_eq!(report.health, RunHealth::Ok);
    } else {
        assert!(
            !report.health.is_ok(),
            "failures must demote health: failed={} poisoned={}",
            report.failed,
            report.poisoned
        );
        assert!(!report.health.failed_steps().is_empty() || report.failed == 0);
    }
    for result in report.results.values() {
        if let workflow::StepResult::Failed(e) = result {
            assert!(
                matches!(e, ToolError::Failed { .. }),
                "injected faults surface as ToolError::Failed, got {e:?}"
            );
        }
    }
}

fn check_plan(specs: &[StepSpec], plan: &FaultPlan) {
    let wf = build_workflow(specs);
    let registry = chaos_registry();
    let retry = RetryPolicy::with_retries(2);
    let (baseline, base_stats) = run(&wf, &registry, plan, 1, retry);
    assert_structured(&baseline);
    // Byte-identical across worker counts, including chaos counters.
    for workers in [2usize, 8] {
        let (report, stats) = run(&wf, &registry, plan, workers, retry);
        assert_eq!(report, baseline, "workers={workers}");
        assert_eq!(stats, base_stats, "workers={workers}: chaos stats diverged");
    }
    // Byte-identical on rerun with the same seed (fresh runtime).
    let (again, again_stats) = run(&wf, &registry, plan, 1, retry);
    assert_eq!(again, baseline, "rerun with the same seed diverged");
    assert_eq!(again_stats, base_stats);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arbitrary_fault_plans_execute_deterministically(
        specs in proptest::collection::vec(step_spec(), 1..10),
        plan in fault_plan(),
    ) {
        check_plan(&specs, &plan);
    }
}

/// The CI seed matrix: pinned plans over a pinned diamond DAG, checked
/// with the exact same invariants as the generated cases.
#[test]
fn fixed_seed_matrix_is_deterministic() {
    let specs = vec![
        StepSpec { function: 0, deps: 0, critical: true },
        StepSpec { function: 1, deps: 0b1, critical: false },
        StepSpec { function: 2, deps: 0b1, critical: true },
        StepSpec { function: 0, deps: 0b110, critical: true },
        StepSpec { function: 1, deps: 0, critical: false },
    ];
    for seed in [1u64, 7, 42, 1337, 0xDEAD_BEEF] {
        let plan = FaultPlan::new(seed)
            .with_fault("c.beta", FaultKind::Transient { failures: (seed % 4) as u32 })
            .with_fault(
                "c.gamma",
                if seed % 2 == 0 { FaultKind::Persistent } else { FaultKind::Slow { ticks: seed % 97 } },
            )
            .with_background_failures((seed % 5) as u32 * 50_000);
        check_plan(&specs, &plan);
    }
}

/// A transient fault within the retry budget is ridden through
/// completely: the run is healthy, and the retries are visible in the
/// report's accounting.
#[test]
fn retry_budget_absorbs_scheduled_transient_faults() {
    let specs = vec![
        StepSpec { function: 1, deps: 0, critical: true },
        StepSpec { function: 0, deps: 0b1, critical: true },
    ];
    let wf = build_workflow(&specs);
    let registry = chaos_registry();
    let plan = FaultPlan::new(3).with_fault("c.beta", FaultKind::Transient { failures: 2 });
    let (report, stats) = run(&wf, &registry, &plan, 4, RetryPolicy::with_retries(2));
    assert_eq!(report.health, RunHealth::Ok, "qa: {:?}", report.qa);
    assert_eq!(report.retries, 2);
    assert_eq!(stats.injected_failures, 2);
    // Under-budget retries leave the fault visible instead.
    let (starved, _) = run(&wf, &registry, &plan, 4, RetryPolicy::with_retries(1));
    assert!(matches!(starved.health, RunHealth::Failed { .. }));
}

/// Corrupted outputs don't fail the step — they surface through the
/// woven-in QA format check.
#[test]
fn corruption_surfaces_as_qa_findings() {
    let specs = vec![StepSpec { function: 2, deps: 0, critical: true }];
    let wf = build_workflow(&specs);
    let registry = chaos_registry();
    let plan = FaultPlan::new(9).with_fault("c.gamma", FaultKind::Corrupt);
    let (report, stats) = run(&wf, &registry, &plan, 1, RetryPolicy::default());
    assert_eq!(stats.corrupted_outputs, 1);
    assert_eq!(report.failed, 0, "corruption is not a failure");
    assert!(
        report
            .qa
            .iter()
            .any(|f| f.severity == workflow::exec::QaSeverity::Error
                && f.message.contains("incompatible")),
        "qa: {:?}",
        report.qa
    );
}
