//! Executor determinism: proptest-generated DAGs — with failures,
//! poisoning chains, empty outputs and missing query arguments — must
//! produce byte-identical [`ExecutionReport`]s at 1, 2 and 8 workers,
//! including the QA-finding order.

use std::collections::BTreeMap;

use proptest::prelude::*;

use registry::{CapabilityEntry, DataFormat, FunctionId, Param, Registry};
use workflow::{execute_with, ExecOptions, Step, ToolError, ToolRuntime, Value, Workflow};

/// What one generated step does.
#[derive(Debug, Clone, Copy)]
enum Behavior {
    /// Produces a table derived from its inputs.
    Ok,
    /// The tool fails, poisoning dependents.
    Fail,
    /// Produces an empty table (raises the QA sanity warning).
    Empty,
    /// Binds a query argument that is never supplied (fails pre-invoke).
    MissingArg,
}

#[derive(Debug, Clone)]
struct StepSpec {
    behavior: Behavior,
    /// Bitmask over earlier steps: bit `j` depends on step `j`.
    deps: u16,
}

fn step_spec() -> impl Strategy<Value = StepSpec> {
    (0u8..6, any::<u16>()).prop_map(|(b, deps)| StepSpec {
        behavior: match b {
            0..=2 => Behavior::Ok,
            3 => Behavior::Fail,
            4 => Behavior::Empty,
            _ => Behavior::MissingArg,
        },
        deps,
    })
}

/// The registry: one function per behavior, with enough optional table
/// parameters to wire any dependency mask.
fn dag_registry() -> Registry {
    let deps: Vec<Param> =
        (0..16).map(|i| Param::optional(&format!("d{i}"), DataFormat::Table)).collect();
    let mut r = Registry::new();
    for id in ["dag.ok", "dag.fail", "dag.empty"] {
        r.register(CapabilityEntry::new(id, "dag", "toy", deps.clone(), DataFormat::Table))
            .unwrap();
    }
    let mut with_arg = deps.clone();
    with_arg.push(Param::required("seed", DataFormat::Scalar));
    r.register(CapabilityEntry::new("dag.needs_arg", "dag", "toy", with_arg, DataFormat::Table))
        .unwrap();
    r
}

/// Deterministic toy runtime: concatenates input tables (in parameter
/// order) and appends its own tag.
struct DagRuntime;

impl ToolRuntime for DagRuntime {
    fn invoke(
        &self,
        function: &FunctionId,
        args: &BTreeMap<String, Value>,
    ) -> Result<Value, ToolError> {
        match function.0.as_str() {
            "dag.ok" => {
                let mut rows: Vec<serde_json::Value> = Vec::new();
                for (name, v) in args {
                    if let Some(a) = v.json().as_array() {
                        rows.extend(a.iter().cloned());
                    }
                    rows.push(serde_json::Value::String(name.clone()));
                }
                Ok(Value::new(DataFormat::Table, serde_json::Value::Array(rows)))
            }
            "dag.empty" => Ok(Value::new(DataFormat::Table, serde_json::json!([]))),
            "dag.fail" => Err(ToolError::Failed {
                function: function.clone(),
                message: "intentional".into(),
                transient: false,
            }),
            _ => Err(ToolError::Unbound(function.clone())),
        }
    }
}

fn build_workflow(specs: &[StepSpec]) -> Workflow {
    let mut wf = Workflow::new("dag", "generated");
    for (i, spec) in specs.iter().enumerate() {
        let function = match spec.behavior {
            Behavior::Ok | Behavior::MissingArg => {
                if matches!(spec.behavior, Behavior::MissingArg) {
                    "dag.needs_arg"
                } else {
                    "dag.ok"
                }
            }
            Behavior::Fail => "dag.fail",
            Behavior::Empty => "dag.empty",
        };
        let mut step = Step::new(&format!("s{i:02}"), function);
        for j in 0..i.min(16) {
            if spec.deps & (1 << j) != 0 {
                step = step.bind(&format!("d{j}"), workflow::Binding::Step(format!("s{j:02}").as_str().into()));
            }
        }
        if matches!(spec.behavior, Behavior::MissingArg) {
            step = step.bind_arg("seed", "never_supplied", DataFormat::Scalar);
        }
        wf.push(step);
    }
    // Every step is an output so the report covers the full DAG surface.
    for i in 0..specs.len() {
        wf = wf.with_output(&format!("s{i:02}"));
    }
    wf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full report — results, outputs, QA findings (and their order),
    /// counters — is identical at 1, 2 and 8 workers.
    #[test]
    fn reports_identical_across_worker_counts(specs in proptest::collection::vec(step_spec(), 1..14)) {
        let wf = build_workflow(&specs);
        let registry = dag_registry();
        let args = BTreeMap::new();
        let baseline = execute_with(&wf, &registry, &DagRuntime, &args, &ExecOptions { workers: 1, ..Default::default() });
        for workers in [2usize, 8] {
            let report = execute_with(&wf, &registry, &DagRuntime, &args, &ExecOptions { workers, ..Default::default() });
            prop_assert_eq!(&report, &baseline);
        }
        // Sanity: counters cover every step instance.
        prop_assert_eq!(baseline.results.len(), specs.len());
    }

    /// Failure accounting holds for any DAG shape: failed steps are the
    /// Fail/MissingArg ones, and every step downstream of a non-Ok step
    /// poisons — deterministically at any worker count.
    #[test]
    fn poisoning_is_transitive_and_deterministic(specs in proptest::collection::vec(step_spec(), 1..14)) {
        let wf = build_workflow(&specs);
        let registry = dag_registry();
        let report = execute_with(&wf, &registry, &DagRuntime, &BTreeMap::new(), &ExecOptions { workers: 8, ..Default::default() });

        // Recompute expected per-step health sequentially.
        let mut ok = vec![false; specs.len()];
        for (i, spec) in specs.iter().enumerate() {
            let deps_ok = (0..i.min(16)).all(|j| spec.deps & (1 << j) == 0 || ok[j]);
            ok[i] = deps_ok && matches!(spec.behavior, Behavior::Ok | Behavior::Empty);
        }
        for (i, &expected) in ok.iter().enumerate() {
            let id = workflow::StepId::from(format!("s{i:02}").as_str());
            let result = report.results.get(&id).expect("every step reported");
            prop_assert_eq!(result.is_ok(), expected);
        }
        prop_assert_eq!(report.outputs.len(), ok.iter().filter(|&&b| b).count());
    }
}
