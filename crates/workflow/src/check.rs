//! Static validation of workflows against a registry.
//!
//! Catches the "standard programming issues" the paper says remain in
//! LLM-generated code — before execution: unknown functions, missing or
//! superfluous parameters, data-format mismatches, references to steps
//! that do not exist or come later (the steps list must already be in
//! topological order), duplicate step ids, and missing outputs.

use std::collections::BTreeMap;

use registry::{DataFormat, Registry};

use crate::{Binding, StepId, Workflow};

/// One validation finding.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    UnknownFunction { step: StepId, function: String },
    DuplicateStepId { step: StepId },
    MissingRequiredParam { step: StepId, param: String },
    UnknownParam { step: StepId, param: String },
    FormatMismatch { step: StepId, param: String, expected: DataFormat, found: DataFormat },
    DanglingStepRef { step: StepId, param: String, target: StepId },
    ForwardStepRef { step: StepId, param: String, target: StepId },
    UnknownOutput { output: StepId },
    EmptyWorkflow,
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeError::UnknownFunction { step, function } => {
                write!(f, "step {step}: unknown function {function}")
            }
            TypeError::DuplicateStepId { step } => write!(f, "duplicate step id {step}"),
            TypeError::MissingRequiredParam { step, param } => {
                write!(f, "step {step}: missing required parameter {param}")
            }
            TypeError::UnknownParam { step, param } => {
                write!(f, "step {step}: function takes no parameter {param}")
            }
            TypeError::FormatMismatch { step, param, expected, found } => write!(
                f,
                "step {step}: parameter {param} expects {expected}, got {found}"
            ),
            TypeError::DanglingStepRef { step, param, target } => {
                write!(f, "step {step}: parameter {param} references unknown step {target}")
            }
            TypeError::ForwardStepRef { step, param, target } => {
                write!(f, "step {step}: parameter {param} references later step {target}")
            }
            TypeError::UnknownOutput { output } => {
                write!(f, "workflow output references unknown step {output}")
            }
            TypeError::EmptyWorkflow => write!(f, "workflow has no steps"),
        }
    }
}

/// Validates a workflow; returns every finding (not just the first).
pub fn check(workflow: &Workflow, registry: &Registry) -> Vec<TypeError> {
    let mut errors = Vec::new();

    if workflow.steps.is_empty() {
        errors.push(TypeError::EmptyWorkflow);
        return errors;
    }

    // Output format of each step, as declared by the registry.
    let mut produced: BTreeMap<&StepId, DataFormat> = BTreeMap::new();
    let mut seen: Vec<&StepId> = Vec::new();

    for step in &workflow.steps {
        if seen.contains(&&step.id) {
            errors.push(TypeError::DuplicateStepId { step: step.id.clone() });
        }

        let entry = match registry.get(&step.function) {
            Some(e) => e,
            None => {
                errors.push(TypeError::UnknownFunction {
                    step: step.id.clone(),
                    function: step.function.0.clone(),
                });
                seen.push(&step.id);
                continue;
            }
        };

        // Required params present?
        for p in entry.required_inputs() {
            if !step.inputs.contains_key(&p.name) {
                errors.push(TypeError::MissingRequiredParam {
                    step: step.id.clone(),
                    param: p.name.clone(),
                });
            }
        }

        // Each binding refers to a declared param with a compatible format.
        for (name, binding) in &step.inputs {
            let param = match entry.param(name) {
                Some(p) => p,
                None => {
                    errors.push(TypeError::UnknownParam {
                        step: step.id.clone(),
                        param: name.clone(),
                    });
                    continue;
                }
            };
            let found: Option<DataFormat> = match binding {
                Binding::Const { format, .. } => Some(*format),
                Binding::QueryArg { format, .. } => Some(*format),
                Binding::Step(target) => {
                    if let Some(fmt) = produced.get(target) {
                        Some(*fmt)
                    } else if workflow.steps.iter().any(|s| &s.id == target) {
                        errors.push(TypeError::ForwardStepRef {
                            step: step.id.clone(),
                            param: name.clone(),
                            target: target.clone(),
                        });
                        None
                    } else {
                        errors.push(TypeError::DanglingStepRef {
                            step: step.id.clone(),
                            param: name.clone(),
                            target: target.clone(),
                        });
                        None
                    }
                }
            };
            if let Some(found) = found {
                if !found.compatible_with(param.format) {
                    errors.push(TypeError::FormatMismatch {
                        step: step.id.clone(),
                        param: name.clone(),
                        expected: param.format,
                        found,
                    });
                }
            }
        }

        produced.insert(&step.id, entry.output);
        seen.push(&step.id);
    }

    for output in &workflow.outputs {
        if !workflow.steps.iter().any(|s| &s.id == output) {
            errors.push(TypeError::UnknownOutput { output: output.clone() });
        }
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Step;
    use registry::{CapabilityEntry, Param};

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register(CapabilityEntry::new(
            "t.source",
            "t",
            "produces a dependency table",
            vec![],
            DataFormat::DependencyTable,
        ))
        .unwrap();
        r.register(CapabilityEntry::new(
            "t.sink",
            "t",
            "consumes a dependency table",
            vec![
                Param::required("deps", DataFormat::DependencyTable),
                Param::optional("threshold", DataFormat::Scalar),
            ],
            DataFormat::ImpactReport,
        ))
        .unwrap();
        r
    }

    #[test]
    fn valid_workflow_passes() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("a", "t.source"))
            .with_step(Step::new("b", "t.sink").bind_step("deps", "a"))
            .with_output("b");
        assert!(check(&wf, &registry()).is_empty());
    }

    #[test]
    fn empty_workflow_flagged() {
        let wf = Workflow::new("w", "q");
        assert_eq!(check(&wf, &registry()), vec![TypeError::EmptyWorkflow]);
    }

    #[test]
    fn unknown_function_flagged() {
        let wf = Workflow::new("w", "q").with_step(Step::new("a", "t.nope"));
        let errs = check(&wf, &registry());
        assert!(matches!(errs[0], TypeError::UnknownFunction { .. }));
    }

    #[test]
    fn missing_required_param_flagged() {
        let wf = Workflow::new("w", "q").with_step(Step::new("b", "t.sink"));
        let errs = check(&wf, &registry());
        assert!(errs
            .iter()
            .any(|e| matches!(e, TypeError::MissingRequiredParam { param, .. } if param == "deps")));
    }

    #[test]
    fn unknown_param_flagged() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("a", "t.source").bind(
                "bogus",
                crate::Binding::constant(DataFormat::Scalar, serde_json::json!(1)),
            ));
        let errs = check(&wf, &registry());
        assert!(errs.iter().any(|e| matches!(e, TypeError::UnknownParam { .. })));
    }

    #[test]
    fn format_mismatch_flagged() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("a", "t.source"))
            .with_step(Step::new("b", "t.sink").bind(
                "deps",
                crate::Binding::constant(DataFormat::Scalar, serde_json::json!(3)),
            ));
        let errs = check(&wf, &registry());
        assert!(errs.iter().any(|e| matches!(
            e,
            TypeError::FormatMismatch { expected: DataFormat::DependencyTable, .. }
        )));
    }

    #[test]
    fn forward_and_dangling_refs_flagged() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("b", "t.sink").bind_step("deps", "a"))
            .with_step(Step::new("a", "t.source"));
        let errs = check(&wf, &registry());
        assert!(errs.iter().any(|e| matches!(e, TypeError::ForwardStepRef { .. })));

        let wf2 = Workflow::new("w", "q")
            .with_step(Step::new("b", "t.sink").bind_step("deps", "ghost"));
        let errs2 = check(&wf2, &registry());
        assert!(errs2.iter().any(|e| matches!(e, TypeError::DanglingStepRef { .. })));
    }

    #[test]
    fn duplicate_ids_and_unknown_outputs_flagged() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("a", "t.source"))
            .with_step(Step::new("a", "t.source"))
            .with_output("zzz");
        let errs = check(&wf, &registry());
        assert!(errs.iter().any(|e| matches!(e, TypeError::DuplicateStepId { .. })));
        assert!(errs.iter().any(|e| matches!(e, TypeError::UnknownOutput { .. })));
    }
}
