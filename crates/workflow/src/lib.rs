//! # workflow — the executable workflow IR
//!
//! SolutionWeaver's output is a [`Workflow`]: a typed DAG of steps, each
//! invoking a registry function with bindings to query arguments, constant
//! values, or earlier steps' outputs.
//!
//! The crate provides the three things the paper's pipeline needs from its
//! "executable code" stage:
//!
//! * [`check`] — static validation (unknown functions, missing required
//!   parameters, format mismatches, dangling references, cycles) so agents
//!   catch wiring mistakes before anything runs;
//! * [`value`] — the Arc-shared [`Value`] model: payloads cross step
//!   boundaries as shared JSON or native substrate artifacts, never as
//!   deep clones;
//! * [`exec`] — a parallel dependency-DAG executor over a
//!   [`exec::ToolRuntime`], bit-identical for any worker count, with
//!   quality assurance woven in (per-step format verification, emptiness
//!   sanity checks, uncertainty accounting) rather than bolted on;
//! * [`render`] — deterministic rendering to Python-like source text, used
//!   for the paper's lines-of-code comparisons (the generated program is
//!   what a user would read and run).

pub mod check;
pub mod exec;
pub mod render;
pub mod value;

pub use check::{check, TypeError};
pub use exec::{
    execute, execute_with, ExecOptions, ExecutionReport, InvokeContext, QaFinding, RetryPolicy,
    RunHealth, StepResult, ToolError, ToolRuntime, TypedValue,
};
pub use render::{loc, to_source};
pub use value::{Value, ValueView};

use std::collections::BTreeMap;

use registry::{DataFormat, FunctionId};
use serde::{Deserialize, Serialize};

/// Identifier of a step within one workflow.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StepId(pub String);

impl From<&str> for StepId {
    fn from(s: &str) -> Self {
        StepId(s.to_string())
    }
}

impl std::fmt::Display for StepId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Where a step input comes from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Binding {
    /// Output of an earlier step.
    Step(StepId),
    /// A constant embedded in the workflow.
    Const { format: DataFormat, value: serde_json::Value },
    /// A named query argument supplied at execution time.
    QueryArg { name: String, format: DataFormat },
}

impl Binding {
    /// Convenience constant constructor.
    pub fn constant(format: DataFormat, value: serde_json::Value) -> Binding {
        Binding::Const { format, value }
    }
}

/// One workflow step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Step {
    pub id: StepId,
    pub function: FunctionId,
    /// parameter name → binding.
    pub inputs: BTreeMap<String, Binding>,
    /// Why this step exists — surfaced in rendered code as a comment.
    pub rationale: String,
    /// Whether a failure of this step fails the whole run. Non-critical
    /// steps (enrichment detectors, QA probes) degrade the report instead
    /// of failing it — see [`exec::RunHealth`].
    pub critical: bool,
}

impl Step {
    /// A step with no inputs.
    pub fn new(id: &str, function: &str) -> Step {
        Step {
            id: StepId::from(id),
            function: FunctionId::from(function),
            inputs: BTreeMap::new(),
            rationale: String::new(),
            critical: true,
        }
    }

    /// Marks the step as non-critical: its failure (and any poisoning it
    /// causes) degrades the run instead of failing it.
    pub fn non_critical(mut self) -> Step {
        self.critical = false;
        self
    }

    /// Binds a parameter.
    pub fn bind(mut self, param: &str, binding: Binding) -> Step {
        self.inputs.insert(param.to_string(), binding);
        self
    }

    /// Binds a parameter to a previous step's output.
    pub fn bind_step(self, param: &str, step: &str) -> Step {
        self.bind(param, Binding::Step(StepId::from(step)))
    }

    /// Binds a parameter to a query argument.
    pub fn bind_arg(self, param: &str, arg: &str, format: DataFormat) -> Step {
        self.bind(param, Binding::QueryArg { name: arg.to_string(), format })
    }

    /// Sets the rationale.
    pub fn because(mut self, why: &str) -> Step {
        self.rationale = why.to_string();
        self
    }

    /// Step ids this step depends on.
    pub fn dependencies(&self) -> Vec<&StepId> {
        self.inputs
            .values()
            .filter_map(|b| match b {
                Binding::Step(id) => Some(id),
                _ => None,
            })
            .collect()
    }
}

/// A complete workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    /// Stable identifier (used by the curator when mining patterns).
    pub id: String,
    /// The natural-language query this workflow answers.
    pub query: String,
    /// Steps in execution order (the checker verifies the order is a valid
    /// topological sort).
    pub steps: Vec<Step>,
    /// Steps whose outputs are the workflow's results.
    pub outputs: Vec<StepId>,
}

impl Workflow {
    /// An empty workflow for a query.
    pub fn new(id: &str, query: &str) -> Workflow {
        Workflow { id: id.to_string(), query: query.to_string(), steps: Vec::new(), outputs: Vec::new() }
    }

    /// Appends a step.
    pub fn push(&mut self, step: Step) {
        self.steps.push(step);
    }

    /// Builder-style step append.
    pub fn with_step(mut self, step: Step) -> Workflow {
        self.push(step);
        self
    }

    /// Marks a step as an output.
    pub fn with_output(mut self, step: &str) -> Workflow {
        self.outputs.push(StepId::from(step));
        self
    }

    /// Finds a step.
    pub fn step(&self, id: &StepId) -> Option<&Step> {
        self.steps.iter().find(|s| &s.id == id)
    }

    /// Distinct functions used, in first-use order.
    pub fn functions_used(&self) -> Vec<FunctionId> {
        let mut out = Vec::new();
        for s in &self.steps {
            if !out.contains(&s.function) {
                out.push(s.function.clone());
            }
        }
        out
    }

    /// Distinct frameworks used (resolved against a registry), sorted.
    pub fn frameworks_used(&self, registry: &registry::Registry) -> Vec<String> {
        let mut v: Vec<String> = self
            .steps
            .iter()
            .filter_map(|s| registry.get(&s.function).map(|e| e.framework.clone()))
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Query arguments the workflow expects, with formats, sorted by name.
    pub fn query_args(&self) -> Vec<(String, DataFormat)> {
        let mut v: Vec<(String, DataFormat)> = self
            .steps
            .iter()
            .flat_map(|s| s.inputs.values())
            .filter_map(|b| match b {
                Binding::QueryArg { name, format } => Some((name.clone(), *format)),
                _ => None,
            })
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_steps() {
        let wf = Workflow::new("wf", "test query")
            .with_step(Step::new("a", "f.one").because("start"))
            .with_step(
                Step::new("b", "f.two")
                    .bind_step("input", "a")
                    .bind_arg("window", "time_window", DataFormat::TimeWindow),
            )
            .with_output("b");
        assert_eq!(wf.steps.len(), 2);
        assert_eq!(wf.step(&StepId::from("b")).unwrap().dependencies(), vec![&StepId::from("a")]);
        assert_eq!(
            wf.query_args(),
            vec![("time_window".to_string(), DataFormat::TimeWindow)]
        );
        assert_eq!(wf.functions_used().len(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let wf = Workflow::new("wf", "q")
            .with_step(Step::new("a", "f.one").bind(
                "k",
                Binding::constant(DataFormat::Scalar, serde_json::json!(0.1)),
            ))
            .with_output("a");
        let json = serde_json::to_string(&wf).unwrap();
        let back: Workflow = serde_json::from_str(&json).unwrap();
        assert_eq!(wf, back);
    }
}
