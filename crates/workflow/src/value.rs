//! The Arc-shared value model.
//!
//! Values crossing step boundaries used to be `(DataFormat, serde_json::Value)`
//! pairs that were deep-cloned at every boundary: runtime → executor,
//! executor → dependent step, runtime cache → caller. A [`Value`] instead
//! carries its payload behind an `Arc`, so sharing a mapping table with
//! twelve dependent steps is twelve pointer bumps, not twelve tree clones.
//!
//! Payloads come in two flavours:
//!
//! * **JSON** — the interchange fallback, `Arc<serde_json::Value>`; this is
//!   what constants, query arguments and deserialized values use;
//! * **native artifacts** — a typed substrate object (mapping table, BGP
//!   update stream, impact table, …) stored as-is behind
//!   `Arc<dyn Artifact>`, with its JSON projection materialized lazily and
//!   cached the first time something actually needs JSON (QA reports,
//!   serialization, cross-type deserialization).
//!
//! Consumers that know the concrete type get the artifact back by
//! reference with [`Value::native_ref`] / [`Value::view`] — no
//! serialize/clone/deserialize round-trip. Consumers that do not fall back
//! to the JSON projection transparently.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use registry::DataFormat;

/// A typed payload that can live natively inside a [`Value`].
///
/// Implementations project to JSON on demand (for interchange, QA and
/// serialization) and report structural emptiness without projecting.
pub trait Artifact: Any + Send + Sync {
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
    /// The JSON projection (computed lazily, cached by [`Value`]).
    fn to_json(&self) -> serde_json::Value;
    /// Whether the JSON projection would be structurally empty (mirrors
    /// [`Value::is_empty_payload`] on the JSON side).
    fn is_empty(&self) -> bool;
}

/// The standard [`Artifact`] wrapper [`Value::native`] stores: any
/// serializable type plus its producer-computed emptiness flag.
struct NativeArtifact<T> {
    value: T,
    empty: bool,
}

impl<T: serde::Serialize + Send + Sync + 'static> Artifact for NativeArtifact<T> {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn to_json(&self) -> serde_json::Value {
        self.value.serialize_json()
    }

    fn is_empty(&self) -> bool {
        self.empty
    }
}

/// The payload representations.
#[derive(Clone)]
enum Payload {
    /// Plain JSON, Arc-shared.
    Json(Arc<serde_json::Value>),
    /// A native artifact plus its lazily cached JSON projection. The cache
    /// is shared across clones, so a value projected once stays projected.
    Native { artifact: Arc<dyn Artifact>, json: Arc<OnceLock<serde_json::Value>> },
}

/// A value flowing between steps: a declared [`DataFormat`] plus an
/// Arc-shared payload. Cloning is cheap (pointer bumps) regardless of
/// payload size.
#[derive(Clone)]
pub struct Value {
    pub format: DataFormat,
    payload: Payload,
}

/// Borrowed-or-owned view of a value as a concrete type; see
/// [`Value::view`].
pub enum ValueView<'a, T> {
    /// The value holds the artifact natively — borrowed, zero-copy.
    Shared(&'a T),
    /// Deserialized from the JSON payload.
    Owned(T),
}

impl<T> std::ops::Deref for ValueView<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match self {
            ValueView::Shared(v) => v,
            ValueView::Owned(v) => v,
        }
    }
}

impl Value {
    /// A JSON value.
    pub fn new(format: DataFormat, value: serde_json::Value) -> Value {
        Value { format, payload: Payload::Json(Arc::new(value)) }
    }

    /// A JSON value sharing an existing allocation.
    pub fn from_shared_json(format: DataFormat, value: Arc<serde_json::Value>) -> Value {
        Value { format, payload: Payload::Json(value) }
    }

    /// A native artifact value. `empty` must mirror what
    /// [`Value::is_empty_payload`] would say about the JSON projection
    /// (structs project to non-empty objects; pass `v.is_empty()` for
    /// sequence-shaped artifacts).
    pub fn native<T: serde::Serialize + Send + Sync + 'static>(
        format: DataFormat,
        value: T,
        empty: bool,
    ) -> Value {
        Value {
            format,
            payload: Payload::Native {
                artifact: Arc::new(NativeArtifact { value, empty }),
                json: Arc::new(OnceLock::new()),
            },
        }
    }

    /// A text value.
    pub fn text(s: &str) -> Value {
        Value::new(DataFormat::Text, serde_json::Value::String(s.to_string()))
    }

    /// Whether the payload is held as a native artifact (no JSON
    /// projection unless someone asked for one).
    pub fn is_native(&self) -> bool {
        matches!(self.payload, Payload::Native { .. })
    }

    /// The JSON projection, by reference. For native artifacts this
    /// materializes (and caches) the projection on first use.
    pub fn json(&self) -> &serde_json::Value {
        match &self.payload {
            Payload::Json(v) => v,
            Payload::Native { artifact, json } => json.get_or_init(|| artifact.to_json()),
        }
    }

    /// The JSON projection behind a shared `Arc` (cheap for JSON payloads;
    /// clones the cached projection once for native ones).
    pub fn json_arc(&self) -> Arc<serde_json::Value> {
        match &self.payload {
            Payload::Json(v) => Arc::clone(v),
            Payload::Native { .. } => Arc::new(self.json().clone()),
        }
    }

    /// Borrows the native artifact as `T`, if this value holds one of
    /// exactly that type.
    pub fn native_ref<T: 'static>(&self) -> Option<&T> {
        match &self.payload {
            Payload::Native { artifact, .. } => {
                artifact.as_any().downcast_ref::<NativeArtifact<T>>().map(|n| &n.value)
            }
            Payload::Json(_) => None,
        }
    }

    /// Views the value as a `T`: zero-copy when the value natively holds a
    /// `T`, deserialized from the JSON projection otherwise.
    pub fn view<T: serde::de::DeserializeOwned + 'static>(
        &self,
    ) -> Result<ValueView<'_, T>, serde::Error> {
        if let Some(v) = self.native_ref::<T>() {
            return Ok(ValueView::Shared(v));
        }
        T::deserialize_json(self.json()).map(ValueView::Owned)
    }

    /// Parses the value into an owned `T` (native fast path: one clone of
    /// the artifact; JSON fallback: one deserialization).
    pub fn parse<T: serde::de::DeserializeOwned + Clone + 'static>(
        &self,
    ) -> Result<T, serde::Error> {
        if let Some(v) = self.native_ref::<T>() {
            return Ok(v.clone());
        }
        T::deserialize_json(self.json())
    }

    /// Whether the payload is structurally empty (empty array/object/null
    /// for JSON; the artifact's own emptiness for native payloads).
    pub fn is_empty_payload(&self) -> bool {
        match &self.payload {
            Payload::Json(v) => json_is_empty(v),
            Payload::Native { artifact, .. } => artifact.is_empty(),
        }
    }
}

fn json_is_empty(v: &serde_json::Value) -> bool {
    match v {
        serde_json::Value::Null => true,
        serde_json::Value::Array(a) => a.is_empty(),
        serde_json::Value::Object(o) => o.is_empty(),
        serde_json::Value::String(s) => s.is_empty(),
        _ => false,
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Value")
            .field("format", &self.format)
            .field("value", &self.json().to_json_string())
            .finish()
    }
}

// Equality compares JSON projections: two values are equal when they carry
// the same format and would serialize identically, however they are held.
impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.format == other.format && self.json() == other.json()
    }
}

// Serialization matches the old derived `{ "format": ..., "value": ... }`
// shape, so persisted workflows and transcripts keep their format.
impl serde::Serialize for Value {
    fn serialize_json(&self) -> serde_json::Value {
        let mut obj = BTreeMap::new();
        obj.insert("format".to_string(), self.format.serialize_json());
        obj.insert("value".to_string(), self.json().clone());
        serde_json::Value::Object(obj)
    }
}

impl serde::Deserialize for Value {
    fn deserialize_json(v: &serde_json::Value) -> Result<Self, serde::Error> {
        let obj = match v {
            serde_json::Value::Object(m) => m,
            _ => return Err(serde::Error::msg("expected value object")),
        };
        let format = obj
            .get("format")
            .ok_or_else(|| serde::Error::msg("missing field format"))
            .and_then(DataFormat::deserialize_json)?;
        let value =
            obj.get("value").cloned().ok_or_else(|| serde::Error::msg("missing field value"))?;
        Ok(Value::new(format, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
    struct Table {
        rows: Vec<i64>,
    }

    #[test]
    fn json_values_roundtrip() {
        let v = Value::new(DataFormat::Scalar, serde_json::json!(42));
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
        assert!(!v.is_native());
    }

    #[test]
    fn native_projects_lazily_and_views_zero_copy() {
        let v = Value::native(DataFormat::Table, Table { rows: vec![1, 2, 3] }, false);
        assert!(v.is_native());
        // Zero-copy borrow of the native artifact.
        let borrowed = v.native_ref::<Table>().expect("native");
        assert_eq!(borrowed.rows, vec![1, 2, 3]);
        // The view API takes the shared path.
        let view = v.view::<Table>().unwrap();
        assert!(matches!(view, ValueView::Shared(_)));
        assert_eq!(view.rows.len(), 3);
        // JSON projection materializes on demand and matches serde.
        assert_eq!(v.json(), &serde_json::json!({"rows": [1, 2, 3]}));
    }

    #[test]
    fn view_falls_back_to_json() {
        let v = Value::new(DataFormat::Table, serde_json::json!({"rows": [7]}));
        let view = v.view::<Table>().unwrap();
        assert!(matches!(view, ValueView::Owned(_)));
        assert_eq!(view.rows, vec![7]);
    }

    #[test]
    fn native_and_json_compare_equal_via_projection() {
        let native = Value::native(DataFormat::Table, Table { rows: vec![5] }, false);
        let json = Value::new(DataFormat::Table, serde_json::json!({"rows": [5]}));
        assert_eq!(native, json);
    }

    #[test]
    fn emptiness_mirrors_json_semantics() {
        assert!(Value::new(DataFormat::Table, serde_json::json!([])).is_empty_payload());
        assert!(Value::new(DataFormat::Any, serde_json::Value::Null).is_empty_payload());
        assert!(!Value::new(DataFormat::Scalar, serde_json::json!(0)).is_empty_payload());
        assert!(Value::native(DataFormat::BgpUpdates, Vec::<i64>::new(), true).is_empty_payload());
        assert!(!Value::native(DataFormat::Table, Table { rows: vec![] }, false)
            .is_empty_payload());
    }

    #[test]
    fn clones_share_the_projection_cache() {
        let v = Value::native(DataFormat::Table, Table { rows: vec![9] }, false);
        let clone = v.clone();
        // Project through the clone, read through the original.
        let _ = clone.json();
        assert_eq!(v.json(), &serde_json::json!({"rows": [9]}));
    }

    #[test]
    fn serialization_shape_is_stable() {
        let v = Value::native(DataFormat::Table, Table { rows: vec![1] }, false);
        let json = serde_json::to_value(&v).unwrap();
        assert_eq!(json.get("format"), Some(&serde_json::json!("Table")));
        assert!(json.get("value").is_some());
    }
}
