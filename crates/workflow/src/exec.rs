//! The workflow executor.
//!
//! Steps run over a dependency DAG against a [`ToolRuntime`] (the binding
//! from function ids to actual measurement-tool calls lives in the
//! `toolkit` crate). Values cross step boundaries as Arc-shared
//! [`Value`]s — a declared [`DataFormat`] plus a payload that is either
//! JSON or a native substrate artifact (see [`crate::value`]) — so
//! fan-out never deep-clones.
//!
//! Independent steps execute **in parallel**: the executor derives the
//! dependency DAG from the step bindings and runs ready steps across a
//! scoped worker pool ([`ExecOptions::workers`]). The report is
//! **bit-identical for any worker count**: each step's result is a pure
//! function of its inputs, per-step QA findings are buffered and stitched
//! back together in workflow list order, and the result/output maps are
//! keyed canonically.
//!
//! Quality assurance is woven into execution, as SolutionWeaver embeds it
//! in generated code: every step's output is verified against its declared
//! format, empty results raise sanity findings, and failed steps poison
//! (skip) their dependents instead of aborting the whole run.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use registry::{FunctionId, Registry};
use serde::{Deserialize, Serialize};
use telemetry::{MetricsRegistry, MetricsSnapshot, Recorder, SpanStatus, StepObservation};

use crate::{Binding, StepId, Workflow};

pub use crate::value::{Value, ValueView};

/// Backwards-compatible alias: the PR 3 API renamed `TypedValue` to
/// [`Value`] when the payload went Arc-shared.
pub type TypedValue = Value;

/// Errors a tool invocation can raise.
#[derive(Debug, Clone, PartialEq)]
pub enum ToolError {
    /// The runtime has no binding for this function.
    Unbound(FunctionId),
    /// Argument missing or of the wrong shape.
    BadArgument { function: FunctionId, message: String },
    /// The tool itself failed. `transient` classifies the failure for the
    /// retry machinery: transient failures (timeouts, momentary
    /// unavailability) are worth re-attempting under a [`RetryPolicy`];
    /// persistent ones are not.
    Failed { function: FunctionId, message: String, transient: bool },
}

impl std::fmt::Display for ToolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ToolError::Unbound(id) => write!(f, "no runtime binding for {id}"),
            ToolError::BadArgument { function, message } => {
                write!(f, "{function}: bad argument: {message}")
            }
            ToolError::Failed { function, message, .. } => {
                write!(f, "{function} failed: {message}")
            }
        }
    }
}

impl std::error::Error for ToolError {}

/// Per-invocation context the executor hands to the runtime: which step is
/// calling and which retry attempt this is. Fault injectors key on it so
/// injected faults are a pure function of the workflow shape — never of
/// worker interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvokeContext<'a> {
    /// The workflow step being executed.
    pub step: &'a StepId,
    /// Zero-based retry attempt (0 = first try).
    pub attempt: u32,
}

/// The binding from registry functions to actual tool implementations.
///
/// Runtimes are `Sync`: the executor invokes independent steps from
/// multiple worker threads against one shared runtime, exactly as the
/// serving engine shares one artifact store across sessions.
pub trait ToolRuntime: Sync {
    /// Invokes `function` with named arguments.
    fn invoke(
        &self,
        function: &FunctionId,
        args: &BTreeMap<String, Value>,
    ) -> Result<Value, ToolError>;

    /// Invokes `function` with the calling step's [`InvokeContext`].
    ///
    /// The executor always calls this entry point; the default forwards to
    /// [`ToolRuntime::invoke`], so ordinary runtimes implement only that.
    /// Wrappers that must behave deterministically under parallel
    /// execution (chaos injectors, circuit breakers) override this and key
    /// their decisions on `(step, attempt)` instead of arrival order.
    fn invoke_with(
        &self,
        ctx: &InvokeContext<'_>,
        function: &FunctionId,
        args: &BTreeMap<String, Value>,
    ) -> Result<Value, ToolError> {
        let _ = ctx;
        self.invoke(function, args)
    }
}

/// Outcome of one step.
#[derive(Debug, Clone, PartialEq)]
pub enum StepResult {
    Ok(Value),
    Failed(ToolError),
    /// Skipped because upstream steps failed. `failed_dependencies` holds
    /// *every* root-cause step id (sorted, deduplicated): direct
    /// dependencies that failed plus the transitive roots behind poisoned
    /// dependencies, so degraded reports attribute causes completely.
    Poisoned { failed_dependencies: Vec<StepId> },
}

impl StepResult {
    pub fn is_ok(&self) -> bool {
        matches!(self, StepResult::Ok(_))
    }

    pub fn value(&self) -> Option<&Value> {
        match self {
            StepResult::Ok(v) => Some(v),
            _ => None,
        }
    }
}

/// Severity of a QA finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QaSeverity {
    Info,
    Warning,
    Error,
}

/// One woven-in QA finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QaFinding {
    pub step: StepId,
    pub severity: QaSeverity,
    pub message: String,
}

/// Overall health of one execution, summarizing how failures relate to
/// step criticality (see [`crate::Step::critical`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunHealth {
    /// Every step succeeded.
    Ok,
    /// Some steps failed or were poisoned, but every failure traces to a
    /// non-critical step: the surviving outputs are trustworthy, the
    /// report merely lacks enrichment.
    Degraded { failed_steps: Vec<StepId> },
    /// At least one critical step failed (or a poisoning root cannot be
    /// attributed to a known non-critical failure).
    Failed { failed_steps: Vec<StepId> },
}

impl RunHealth {
    pub fn is_ok(&self) -> bool {
        matches!(self, RunHealth::Ok)
    }

    pub fn is_degraded(&self) -> bool {
        matches!(self, RunHealth::Degraded { .. })
    }

    /// The failed step ids (sorted), empty when healthy.
    pub fn failed_steps(&self) -> &[StepId] {
        match self {
            RunHealth::Ok => &[],
            RunHealth::Degraded { failed_steps } | RunHealth::Failed { failed_steps } => {
                failed_steps
            }
        }
    }
}

/// The full execution report. Deterministic for a given workflow, runtime
/// and argument set — independent of the executor's worker count.
#[derive(Debug, PartialEq)]
pub struct ExecutionReport {
    /// Per-step results, in canonical step-id order.
    pub results: BTreeMap<StepId, StepResult>,
    /// Workflow outputs (only the steps that succeeded).
    pub outputs: BTreeMap<StepId, Value>,
    /// QA findings, in workflow list order (per-step findings keep their
    /// emission order).
    pub qa: Vec<QaFinding>,
    /// Steps executed / failed / poisoned.
    pub executed: usize,
    pub failed: usize,
    pub poisoned: usize,
    /// Total retries spent across all steps.
    pub retries: usize,
    /// Total logical backoff ticks accumulated by those retries.
    pub backoff_ticks: u64,
    /// Health classification of the run.
    pub health: RunHealth,
    /// Executor metrics for this run (step counters plus the
    /// `exec.step_ticks` logical-duration histogram). Always populated
    /// from the deterministic fold, recorder or not.
    pub metrics: MetricsSnapshot,
}

impl ExecutionReport {
    /// Whether every step succeeded.
    pub fn all_ok(&self) -> bool {
        self.failed == 0 && self.poisoned == 0
    }

    /// The single output value, when the workflow declares exactly one.
    pub fn sole_output(&self) -> Option<&Value> {
        if self.outputs.len() == 1 {
            self.outputs.values().next()
        } else {
            None
        }
    }
}

/// Budgeted retries with deterministic logical backoff.
///
/// Only [`ToolError::Failed`] with `transient: true` is retried. Backoff
/// is counted in *logical ticks* — `base << attempt` — never wall-clock
/// sleeps, so retried runs stay bit-identical at any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first (0 disables retries).
    pub max_retries: u32,
    /// Base of the exponential logical backoff, in ticks.
    pub backoff_base_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 0, backoff_base_ticks: 1 }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_retries` extra attempts.
    pub fn with_retries(max_retries: u32) -> RetryPolicy {
        RetryPolicy { max_retries, ..RetryPolicy::default() }
    }

    /// Logical ticks charged before re-running attempt `attempt + 1`.
    pub fn backoff_ticks(&self, attempt: u32) -> u64 {
        self.backoff_base_ticks << attempt.min(16)
    }
}

/// Executor tuning.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads for independent steps. The report is identical for
    /// any value; `1` forces sequential execution.
    pub workers: usize,
    /// Retry budget for transient tool failures.
    pub retry: RetryPolicy,
    /// Optional deterministic trace/metrics collector. When present, the
    /// executor's fold assembles workflow/step/attempt spans (in workflow
    /// list order, so traces are byte-identical at any worker count) and
    /// runtime wrappers attach their buffered invocation events.
    pub recorder: Option<Arc<Recorder>>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            workers: default_workers(),
            retry: RetryPolicy::default(),
            recorder: None,
        }
    }
}

/// The default worker count: the machine's parallelism, capped — workflow
/// DAGs are shallow and the substrate calls parallelize internally too.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// Executes a workflow with default options.
///
/// `query_args` supplies values for [`Binding::QueryArg`] bindings. The
/// workflow should already have passed [`crate::check`]; execution is
/// defensive regardless.
pub fn execute(
    workflow: &Workflow,
    registry: &Registry,
    runtime: &dyn ToolRuntime,
    query_args: &BTreeMap<String, Value>,
) -> ExecutionReport {
    execute_with(workflow, registry, runtime, query_args, &ExecOptions::default())
}

/// What one scheduled step produced: its result plus the QA findings it
/// emitted, buffered so the report can stitch findings back into workflow
/// list order regardless of completion order.
struct StepOutcome {
    result: StepResult,
    qa: Vec<QaFinding>,
    /// Whether the tool was actually invoked (poisoned steps and steps
    /// with missing query arguments never reach the runtime).
    invoked: bool,
    /// Retries spent on this step.
    retries: usize,
    /// Logical backoff ticks those retries accumulated.
    backoff_ticks: u64,
}

/// Scheduler state shared by the worker pool.
struct Scheduler {
    /// Indices ready to run, in ascending order of discovery.
    ready: VecDeque<usize>,
    /// Unresolved dependency count per step index.
    pending: Vec<usize>,
    /// Steps not yet completed.
    remaining: usize,
}

/// Executes a workflow with explicit options.
pub fn execute_with(
    workflow: &Workflow,
    registry: &Registry,
    runtime: &dyn ToolRuntime,
    query_args: &BTreeMap<String, Value>,
    options: &ExecOptions,
) -> ExecutionReport {
    let steps = &workflow.steps;
    let n = steps.len();

    // Resolve every Step binding ONCE, to the *latest prior* occurrence
    // of the target id — the same step a list-order executor would have
    // seen in its results map (later duplicates overwrite earlier ones
    // there). `resolved[i][param]` is what scheduling waits on AND what
    // `run_step` reads, so the two can never disagree. Unresolvable
    // targets (forward or dangling references) resolve to `None`; the
    // step poisons at run time, exactly as when the target was absent
    // from the results map.
    let mut resolved: Vec<BTreeMap<&String, Option<usize>>> = Vec::with_capacity(n);
    let mut latest: BTreeMap<&StepId, usize> = BTreeMap::new();
    for (i, step) in steps.iter().enumerate() {
        let mut targets = BTreeMap::new();
        for (name, binding) in &step.inputs {
            if let Binding::Step(target) = binding {
                targets.insert(name, latest.get(target).copied());
            }
        }
        resolved.push(targets);
        latest.insert(&step.id, i);
    }
    let dep_indices: Vec<Vec<usize>> = resolved
        .iter()
        .map(|targets| {
            let mut deps: Vec<usize> = targets.values().flatten().copied().collect();
            deps.sort_unstable();
            deps.dedup();
            deps
        })
        .collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, deps) in dep_indices.iter().enumerate() {
        for &j in deps {
            dependents[j].push(i);
        }
    }

    let outcomes: Vec<OnceLock<StepOutcome>> = (0..n).map(|_| OnceLock::new()).collect();
    let scheduler = Mutex::new(Scheduler {
        ready: (0..n).filter(|&i| dep_indices[i].is_empty()).collect(),
        pending: dep_indices.iter().map(Vec::len).collect(),
        remaining: n,
    });
    let wake = Condvar::new();
    // A panicking tool must not deadlock the pool: the first panic is
    // parked here and re-raised once every in-flight worker has drained,
    // preserving the list-order executor's propagation semantics.
    let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let run_worker = || loop {
        let i = {
            let mut sched = scheduler.lock().expect("scheduler lock");
            loop {
                if sched.remaining == 0 {
                    return;
                }
                if let Some(i) = sched.ready.pop_front() {
                    break i;
                }
                sched = wake.wait(sched).expect("scheduler lock");
            }
        };

        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_step(registry, runtime, query_args, steps, &resolved[i], i, &outcomes, &options.retry)
        }))
        .unwrap_or_else(|payload| {
            let mut first = panicked.lock().expect("panic slot");
            if first.is_none() {
                *first = Some(payload);
            }
            StepOutcome {
                result: StepResult::Failed(ToolError::Failed {
                    function: steps[i].function.clone(),
                    message: "tool panicked".to_string(),
                    transient: false,
                }),
                qa: Vec::new(),
                invoked: true,
                retries: 0,
                backoff_ticks: 0,
            }
        });
        outcomes[i].set(outcome).unwrap_or_else(|_| panic!("step {i} ran twice"));

        let mut sched = scheduler.lock().expect("scheduler lock");
        sched.remaining -= 1;
        for &d in &dependents[i] {
            sched.pending[d] -= 1;
            if sched.pending[d] == 0 {
                sched.ready.push_back(d);
            }
        }
        // Wake idle workers for newly ready steps, and everyone at the end.
        if sched.remaining == 0 || !sched.ready.is_empty() {
            wake.notify_all();
        }
    };

    let workers = options.workers.clamp(1, n.max(1));
    if workers <= 1 {
        run_worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(run_worker);
            }
        });
    }

    if let Some(payload) = panicked.lock().expect("panic slot").take() {
        std::panic::resume_unwind(payload);
    }

    // Assemble the deterministic report: results keyed canonically (later
    // duplicate ids overwrite earlier, as the list-order executor did), QA
    // stitched in workflow list order, counters over step instances.
    let mut results: BTreeMap<StepId, StepResult> = BTreeMap::new();
    let mut critical: BTreeMap<&StepId, bool> = BTreeMap::new();
    let mut qa: Vec<QaFinding> = Vec::new();
    let (mut executed, mut failed, mut poisoned) = (0usize, 0usize, 0usize);
    let (mut retries, mut backoff_ticks) = (0usize, 0u64);
    let mut exec_metrics = MetricsRegistry::new();
    let mut observations: Vec<StepObservation> = Vec::with_capacity(n);
    for (i, step) in steps.iter().enumerate() {
        let outcome = outcomes[i].get().expect("all steps completed");
        if outcome.invoked {
            executed += 1;
        }
        let (status, poison_roots) = match &outcome.result {
            StepResult::Ok(_) => (SpanStatus::Ok, Vec::new()),
            StepResult::Failed(_) => {
                failed += 1;
                (SpanStatus::Failed, Vec::new())
            }
            StepResult::Poisoned { failed_dependencies } => {
                poisoned += 1;
                let roots = failed_dependencies.iter().map(|id| id.0.clone()).collect();
                (SpanStatus::Poisoned, roots)
            }
        };
        retries += outcome.retries;
        backoff_ticks += outcome.backoff_ticks;
        // Per-step logical duration: one tick per attempt plus the
        // backoff ticks between attempts; a never-invoked step costs one.
        let step_ticks = if outcome.invoked {
            outcome.retries as u64 + 1 + outcome.backoff_ticks
        } else {
            1
        };
        exec_metrics.observe("exec.step_ticks", 0, 64, 8, step_ticks);
        if options.recorder.is_some() {
            observations.push(StepObservation {
                step: step.id.0.clone(),
                function: step.function.to_string(),
                invoked: outcome.invoked,
                retries: outcome.retries as u32,
                status,
                poison_roots,
            });
        }
        qa.extend(outcome.qa.iter().cloned());
        results.insert(step.id.clone(), outcome.result.clone());
        critical.insert(&step.id, step.critical);
    }

    exec_metrics.add("exec.steps", n as u64);
    exec_metrics.add("exec.executed", executed as u64);
    exec_metrics.add("exec.failed", failed as u64);
    exec_metrics.add("exec.poisoned", poisoned as u64);
    exec_metrics.add("exec.retries", retries as u64);
    exec_metrics.add("exec.backoff_ticks", backoff_ticks);
    exec_metrics.add("exec.qa_findings", qa.len() as u64);

    if let Some(recorder) = &options.recorder {
        recorder.record_workflow(&workflow.id, options.retry.backoff_base_ticks, &observations);
    }

    let outputs: BTreeMap<StepId, Value> = workflow
        .outputs
        .iter()
        .filter_map(|id| results.get(id).and_then(|r| r.value()).map(|v| (id.clone(), v.clone())))
        .collect();

    let health = compute_health(&results, &critical);

    let metrics = exec_metrics.snapshot();
    ExecutionReport {
        results,
        outputs,
        qa,
        executed,
        failed,
        poisoned,
        retries,
        backoff_ticks,
        health,
        metrics,
    }
}

/// Classifies run health from the canonical results: Ok when nothing
/// failed; Degraded when every failed step is non-critical and every
/// poisoning root traces to one of those non-critical failures; Failed
/// otherwise (including dangling-reference poisonings with no attributable
/// root failure).
fn compute_health(
    results: &BTreeMap<StepId, StepResult>,
    critical: &BTreeMap<&StepId, bool>,
) -> RunHealth {
    let failed_steps: Vec<StepId> = results
        .iter()
        .filter(|(_, r)| matches!(r, StepResult::Failed(_)))
        .map(|(id, _)| id.clone())
        .collect();
    let poison_roots: Vec<&StepId> = results
        .values()
        .filter_map(|r| match r {
            StepResult::Poisoned { failed_dependencies } => Some(failed_dependencies.iter()),
            _ => None,
        })
        .flatten()
        .collect();
    if failed_steps.is_empty() && poison_roots.is_empty() {
        return RunHealth::Ok;
    }
    let degradable_failure = |id: &StepId| critical.get(id) == Some(&false);
    let roots_attributed = poison_roots
        .iter()
        .all(|root| failed_steps.binary_search(root).is_ok() && degradable_failure(root));
    if failed_steps.iter().all(degradable_failure) && roots_attributed {
        RunHealth::Degraded { failed_steps }
    } else {
        RunHealth::Failed { failed_steps }
    }
}

/// Runs one step: binding resolution (first unsatisfiable binding in
/// parameter-name order wins, matching the list-order executor), tool
/// invocation with budgeted retries, woven-in QA.
#[allow(clippy::too_many_arguments)]
fn run_step(
    registry: &Registry,
    runtime: &dyn ToolRuntime,
    query_args: &BTreeMap<String, Value>,
    steps: &[crate::Step],
    resolved_targets: &BTreeMap<&String, Option<usize>>,
    index: usize,
    outcomes: &[OnceLock<StepOutcome>],
    retry: &RetryPolicy,
) -> StepOutcome {
    let step = &steps[index];
    let mut qa: Vec<QaFinding> = Vec::new();

    // Resolve bindings. Once a poisoned binding is seen, the remaining
    // bindings are scanned only to widen the root-cause list — they can
    // no longer change the step's category (matching the list-order
    // executor, where the first unsatisfiable binding decided it).
    let mut args: BTreeMap<String, Value> = BTreeMap::new();
    let mut poison_roots: Vec<StepId> = Vec::new();
    for (name, binding) in &step.inputs {
        match binding {
            Binding::Const { format, value } => {
                args.insert(name.clone(), Value::new(*format, value.clone()));
            }
            Binding::QueryArg { name: arg, format } => match query_args.get(arg) {
                Some(v) => {
                    args.insert(name.clone(), v.clone());
                }
                None if poison_roots.is_empty() => {
                    qa.push(QaFinding {
                        step: step.id.clone(),
                        severity: QaSeverity::Error,
                        message: format!("query argument {arg} ({format}) not supplied"),
                    });
                    return StepOutcome {
                        result: StepResult::Failed(ToolError::BadArgument {
                            function: step.function.clone(),
                            message: format!("missing query argument {arg}"),
                        }),
                        qa,
                        invoked: false,
                        retries: 0,
                        backoff_ticks: 0,
                    };
                }
                None => {}
            },
            Binding::Step(target) => {
                // The scheduler waited on exactly this index (same map).
                let resolved_index = resolved_targets.get(name).copied().flatten();
                let resolved = resolved_index
                    .and_then(|j| outcomes[j].get())
                    .and_then(|o| o.result.value());
                match resolved {
                    Some(v) => {
                        args.insert(name.clone(), v.clone());
                    }
                    None => {
                        // Attribute the root cause: a failed dependency
                        // contributes its own id, a poisoned one its
                        // (already transitive) roots, and an unresolvable
                        // target — forward or dangling reference — the
                        // referenced id itself.
                        let mut attributed = false;
                        if let Some(outcome) = resolved_index.and_then(|j| outcomes[j].get()) {
                            match &outcome.result {
                                StepResult::Failed(_) => {
                                    let j = resolved_index.unwrap_or(index);
                                    poison_roots.push(steps[j].id.clone());
                                    attributed = true;
                                }
                                StepResult::Poisoned { failed_dependencies } => {
                                    poison_roots.extend(failed_dependencies.iter().cloned());
                                    attributed = true;
                                }
                                StepResult::Ok(_) => {}
                            }
                        }
                        if !attributed {
                            poison_roots.push(target.clone());
                        }
                    }
                }
            }
        }
    }
    if !poison_roots.is_empty() {
        poison_roots.sort();
        poison_roots.dedup();
        return StepOutcome {
            result: StepResult::Poisoned { failed_dependencies: poison_roots },
            qa,
            invoked: false,
            retries: 0,
            backoff_ticks: 0,
        };
    }

    // Invoke (composites expand to their sequence), retrying transient
    // failures within the policy's budget. Backoff is logical ticks, so
    // the loop — and therefore the report — is deterministic.
    let mut attempt: u32 = 0;
    let mut backoff_ticks: u64 = 0;
    let invoked = loop {
        let ctx = InvokeContext { step: &step.id, attempt };
        match invoke_entry(registry, runtime, &ctx, &step.function, &args) {
            Err(ToolError::Failed { function, message, transient: true })
                if attempt < retry.max_retries =>
            {
                let ticks = retry.backoff_ticks(attempt);
                backoff_ticks += ticks;
                qa.push(QaFinding {
                    step: step.id.clone(),
                    severity: QaSeverity::Info,
                    message: format!(
                        "attempt {}: {function} failed transiently ({message}); retrying after {ticks} logical tick(s)",
                        attempt + 1
                    ),
                });
                attempt += 1;
            }
            other => break other,
        }
    };
    let retries = attempt as usize;

    match invoked {
        Ok(value) => {
            // Woven-in QA: declared format check + emptiness sanity.
            if let Some(entry) = registry.get(&step.function) {
                if !value.format.compatible_with(entry.output) {
                    qa.push(QaFinding {
                        step: step.id.clone(),
                        severity: QaSeverity::Error,
                        message: format!(
                            "output format {} incompatible with declared {}",
                            value.format, entry.output
                        ),
                    });
                }
            }
            if value.is_empty_payload() {
                qa.push(QaFinding {
                    step: step.id.clone(),
                    severity: QaSeverity::Warning,
                    message: "step produced an empty result".to_string(),
                });
            }
            StepOutcome { result: StepResult::Ok(value), qa, invoked: true, retries, backoff_ticks }
        }
        Err(e) => {
            qa.push(QaFinding {
                step: step.id.clone(),
                severity: QaSeverity::Error,
                message: e.to_string(),
            });
            StepOutcome { result: StepResult::Failed(e), qa, invoked: true, retries, backoff_ticks }
        }
    }
}

/// Invokes a function, expanding curator-mined composites: the sequence
/// runs in order, each function's output feeding the next one's first
/// required parameter (remaining arguments pass through by name). The
/// calling step's [`InvokeContext`] flows through to every leaf call.
fn invoke_entry(
    registry: &Registry,
    runtime: &dyn ToolRuntime,
    ctx: &InvokeContext<'_>,
    function: &FunctionId,
    args: &BTreeMap<String, Value>,
) -> Result<Value, ToolError> {
    let entry = registry.get(function);
    match entry.map(|e| e.implementation.clone()) {
        Some(registry::Implementation::Composite { sequence }) => {
            let mut carried: Option<Value> = None;
            for fid in &sequence {
                let mut call_args = args.clone();
                if let (Some(prev), Some(sub)) = (&carried, registry.get(fid)) {
                    if let Some(first_req) = sub.required_inputs().next() {
                        call_args.insert(first_req.name.clone(), prev.clone());
                    }
                }
                carried = Some(invoke_entry(registry, runtime, ctx, fid, &call_args)?);
            }
            carried.ok_or_else(|| ToolError::Failed {
                function: function.clone(),
                message: "composite with empty sequence".to_string(),
                transient: false,
            })
        }
        _ => runtime.invoke_with(ctx, function, args),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Step;
    use registry::{CapabilityEntry, DataFormat, Implementation, Param, Registry};

    /// A runtime binding two toy functions.
    struct ToyRuntime;

    impl ToolRuntime for ToyRuntime {
        fn invoke(
            &self,
            function: &FunctionId,
            args: &BTreeMap<String, Value>,
        ) -> Result<Value, ToolError> {
            match function.0.as_str() {
                "toy.make" => Ok(Value::new(
                    DataFormat::Table,
                    serde_json::json!([{"v": 1}, {"v": 2}]),
                )),
                "toy.count" => {
                    let t = args.get("table").ok_or(ToolError::BadArgument {
                        function: function.clone(),
                        message: "missing table".into(),
                    })?;
                    let n = t.json().as_array().map(|a| a.len()).unwrap_or(0);
                    Ok(Value::new(DataFormat::Scalar, serde_json::json!(n)))
                }
                "toy.fail" => Err(ToolError::Failed {
                    function: function.clone(),
                    message: "intentional".into(),
                    transient: false,
                }),
                "toy.empty" => Ok(Value::new(DataFormat::Table, serde_json::json!([]))),
                _ => Err(ToolError::Unbound(function.clone())),
            }
        }
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register(CapabilityEntry::new("toy.make", "toy", "makes a table", vec![], DataFormat::Table))
            .unwrap();
        r.register(CapabilityEntry::new(
            "toy.count",
            "toy",
            "counts rows",
            vec![Param::required("table", DataFormat::Table)],
            DataFormat::Scalar,
        ))
        .unwrap();
        r.register(CapabilityEntry::new("toy.fail", "toy", "always fails", vec![], DataFormat::Table))
            .unwrap();
        r.register(CapabilityEntry::new("toy.empty", "toy", "empty table", vec![], DataFormat::Table))
            .unwrap();
        let mut comp = CapabilityEntry::new(
            "macro.make_and_count",
            "composite",
            "makes then counts",
            vec![],
            DataFormat::Scalar,
        );
        comp.implementation = Implementation::Composite {
            sequence: vec![FunctionId::from("toy.make"), FunctionId::from("toy.count")],
        };
        r.register(comp).unwrap();
        r
    }

    #[test]
    fn linear_workflow_executes() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("a", "toy.make"))
            .with_step(Step::new("b", "toy.count").bind_step("table", "a"))
            .with_output("b");
        let report = execute(&wf, &registry(), &ToyRuntime, &BTreeMap::new());
        assert!(report.all_ok());
        assert_eq!(report.sole_output().unwrap().json(), &serde_json::json!(2));
    }

    #[test]
    fn failure_poisons_dependents() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("a", "toy.fail"))
            .with_step(Step::new("b", "toy.count").bind_step("table", "a"))
            .with_output("b");
        let report = execute(&wf, &registry(), &ToyRuntime, &BTreeMap::new());
        assert_eq!(report.failed, 1);
        assert_eq!(report.poisoned, 1);
        assert!(report.outputs.is_empty());
        assert!(matches!(
            report.results.get(&StepId::from("b")),
            Some(StepResult::Poisoned { failed_dependencies })
                if failed_dependencies == &vec![StepId::from("a")]
        ));
        assert_eq!(
            report.health,
            RunHealth::Failed { failed_steps: vec![StepId::from("a")] },
            "a critical failure fails the run"
        );
    }

    #[test]
    fn missing_query_arg_is_reported() {
        let wf = Workflow::new("w", "q").with_step(
            Step::new("a", "toy.count").bind_arg("table", "the_table", DataFormat::Table),
        );
        let report = execute(&wf, &registry(), &ToyRuntime, &BTreeMap::new());
        assert_eq!(report.failed, 1);
        assert_eq!(report.executed, 0, "missing args never reach the runtime");
        assert!(report
            .qa
            .iter()
            .any(|f| f.severity == QaSeverity::Error && f.message.contains("the_table")));
    }

    #[test]
    fn empty_output_raises_sanity_warning() {
        let wf = Workflow::new("w", "q").with_step(Step::new("a", "toy.empty"));
        let report = execute(&wf, &registry(), &ToyRuntime, &BTreeMap::new());
        assert!(report
            .qa
            .iter()
            .any(|f| f.severity == QaSeverity::Warning && f.message.contains("empty")));
    }

    #[test]
    fn composite_expands_and_chains() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("a", "macro.make_and_count"))
            .with_output("a");
        let report = execute(&wf, &registry(), &ToyRuntime, &BTreeMap::new());
        assert!(report.all_ok(), "qa: {:?}", report.qa);
        assert_eq!(report.sole_output().unwrap().json(), &serde_json::json!(2));
    }

    #[test]
    fn query_args_flow_into_steps() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("a", "toy.count").bind_arg("table", "t", DataFormat::Table))
            .with_output("a");
        let mut args = BTreeMap::new();
        args.insert(
            "t".to_string(),
            Value::new(DataFormat::Table, serde_json::json!([1, 2, 3])),
        );
        let report = execute(&wf, &registry(), &ToyRuntime, &args);
        assert!(report.all_ok());
        assert_eq!(report.sole_output().unwrap().json(), &serde_json::json!(3));
    }

    /// A diamond DAG: fan-out runs in parallel, and every worker count
    /// produces the identical report.
    #[test]
    fn dag_report_is_worker_count_invariant() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("src", "toy.make"))
            .with_step(Step::new("left", "toy.count").bind_step("table", "src"))
            .with_step(Step::new("right", "toy.count").bind_step("table", "src"))
            .with_step(Step::new("bad", "toy.fail"))
            .with_step(Step::new("downstream", "toy.count").bind_step("table", "bad"))
            .with_output("left")
            .with_output("right");
        let reg = registry();
        let baseline = execute_with(
            &wf,
            &reg,
            &ToyRuntime,
            &BTreeMap::new(),
            &ExecOptions { workers: 1, ..Default::default() },
        );
        for workers in [2, 4, 8] {
            let parallel = execute_with(
                &wf,
                &reg,
                &ToyRuntime,
                &BTreeMap::new(),
                &ExecOptions { workers, ..Default::default() },
            );
            assert_eq!(parallel, baseline, "workers={workers}");
        }
        assert_eq!(baseline.failed, 1);
        assert_eq!(baseline.poisoned, 1);
        assert_eq!(baseline.outputs.len(), 2);
    }

    /// A panicking tool propagates the panic (as the list-order executor
    /// did) instead of deadlocking the worker pool.
    #[test]
    fn tool_panic_propagates_at_any_worker_count() {
        struct PanickyRuntime;
        impl ToolRuntime for PanickyRuntime {
            fn invoke(
                &self,
                function: &FunctionId,
                _args: &BTreeMap<String, Value>,
            ) -> Result<Value, ToolError> {
                if function.0 == "toy.fail" {
                    panic!("runtime bug");
                }
                Ok(Value::new(DataFormat::Table, serde_json::json!([1])))
            }
        }
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("a", "toy.make"))
            .with_step(Step::new("boom", "toy.fail"))
            .with_step(Step::new("b", "toy.count").bind_step("table", "a"));
        for workers in [1usize, 4] {
            let result = std::panic::catch_unwind(|| {
                execute_with(
                    &wf,
                    &registry(),
                    &PanickyRuntime,
                    &BTreeMap::new(),
                    &ExecOptions { workers, ..Default::default() },
                )
            });
            assert!(result.is_err(), "workers={workers}: panic must propagate");
        }
    }

    /// Forward references poison (the target never resolves), exactly as
    /// in list-order execution.
    #[test]
    fn forward_reference_poisons() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("b", "toy.count").bind_step("table", "a"))
            .with_step(Step::new("a", "toy.make"));
        let report = execute(&wf, &registry(), &ToyRuntime, &BTreeMap::new());
        assert_eq!(report.poisoned, 1);
        assert!(matches!(
            report.results.get(&StepId::from("b")),
            Some(StepResult::Poisoned { failed_dependencies })
                if failed_dependencies == &vec![StepId::from("a")]
        ));
        assert!(
            matches!(report.health, RunHealth::Failed { .. }),
            "a dangling-reference poisoning has no attributable non-critical root"
        );
    }

    /// A step with several failed upstream paths records *every* root
    /// cause, sorted — not just the first one discovered.
    #[test]
    fn poisoning_collects_all_failed_dependencies() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("fail_z", "toy.fail"))
            .with_step(Step::new("fail_a", "toy.fail"))
            .with_step(Step::new("mid", "toy.count").bind_step("table", "fail_z"))
            .with_step(
                Step::new("join", "toy.count")
                    .bind_step("table", "mid")
                    .bind_step("extra", "fail_a"),
            );
        let report = execute(&wf, &registry(), &ToyRuntime, &BTreeMap::new());
        assert!(matches!(
            report.results.get(&StepId::from("join")),
            Some(StepResult::Poisoned { failed_dependencies })
                if failed_dependencies == &vec![StepId::from("fail_a"), StepId::from("fail_z")]
        ));
    }

    /// The diamond-DAG propagation contract: one shared upstream failure
    /// poisons both branches and their join — and nothing in an unrelated
    /// subtree — identically at 1, 2 and 8 workers.
    #[test]
    fn diamond_failure_poisons_both_branches_only() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("apex", "toy.fail"))
            .with_step(Step::new("left", "toy.count").bind_step("table", "apex"))
            .with_step(Step::new("right", "toy.count").bind_step("table", "apex"))
            .with_step(
                Step::new("join", "toy.count")
                    .bind_step("table", "left")
                    .bind_step("other", "right"),
            )
            .with_step(Step::new("other_root", "toy.make"))
            .with_step(Step::new("other_leaf", "toy.count").bind_step("table", "other_root"))
            .with_output("join")
            .with_output("other_leaf");
        let reg = registry();
        let baseline = execute_with(
            &wf,
            &reg,
            &ToyRuntime,
            &BTreeMap::new(),
            &ExecOptions { workers: 1, ..Default::default() },
        );
        for workers in [2, 8] {
            let parallel = execute_with(
                &wf,
                &reg,
                &ToyRuntime,
                &BTreeMap::new(),
                &ExecOptions { workers, ..Default::default() },
            );
            assert_eq!(parallel, baseline, "workers={workers}");
        }
        let apex_roots = vec![StepId::from("apex")];
        for poisoned in ["left", "right", "join"] {
            assert!(
                matches!(
                    baseline.results.get(&StepId::from(poisoned)),
                    Some(StepResult::Poisoned { failed_dependencies })
                        if failed_dependencies == &apex_roots
                ),
                "{poisoned} must be poisoned by apex alone"
            );
        }
        assert!(baseline.results[&StepId::from("other_root")].is_ok());
        assert!(baseline.results[&StepId::from("other_leaf")].is_ok());
        assert_eq!(baseline.outputs.len(), 1, "unrelated subtree still produces its output");
    }

    /// A runtime whose function fails transiently on early attempts —
    /// keyed purely on the executor-provided attempt counter, so it is
    /// deterministic without internal state.
    struct TransientRuntime {
        fail_attempts: u32,
    }

    impl ToolRuntime for TransientRuntime {
        fn invoke(
            &self,
            function: &FunctionId,
            args: &BTreeMap<String, Value>,
        ) -> Result<Value, ToolError> {
            self.invoke_with(&InvokeContext { step: &StepId::from("?"), attempt: 0 }, function, args)
        }

        fn invoke_with(
            &self,
            ctx: &InvokeContext<'_>,
            function: &FunctionId,
            _args: &BTreeMap<String, Value>,
        ) -> Result<Value, ToolError> {
            if ctx.attempt < self.fail_attempts {
                Err(ToolError::Failed {
                    function: function.clone(),
                    message: "flaky".into(),
                    transient: true,
                })
            } else {
                Ok(Value::new(DataFormat::Table, serde_json::json!([{"v": 1}])))
            }
        }
    }

    #[test]
    fn transient_failures_retry_within_budget() {
        let wf = Workflow::new("w", "q").with_step(Step::new("a", "toy.make")).with_output("a");
        let report = execute_with(
            &wf,
            &registry(),
            &TransientRuntime { fail_attempts: 2 },
            &BTreeMap::new(),
            &ExecOptions { workers: 1, retry: RetryPolicy::with_retries(3), ..Default::default() },
        );
        assert!(report.all_ok(), "qa: {:?}", report.qa);
        assert_eq!(report.health, RunHealth::Ok);
        assert_eq!(report.retries, 2);
        // base 1: 1 << 0 + 1 << 1 = 3 logical ticks of backoff.
        assert_eq!(report.backoff_ticks, 3);
        assert_eq!(
            report.qa.iter().filter(|f| f.severity == QaSeverity::Info).count(),
            2,
            "each retry leaves an Info finding"
        );
    }

    #[test]
    fn retry_budget_exhaustion_fails_the_step() {
        let wf = Workflow::new("w", "q").with_step(Step::new("a", "toy.make"));
        let report = execute_with(
            &wf,
            &registry(),
            &TransientRuntime { fail_attempts: 5 },
            &BTreeMap::new(),
            &ExecOptions { workers: 1, retry: RetryPolicy::with_retries(1), ..Default::default() },
        );
        assert_eq!(report.failed, 1);
        assert_eq!(report.retries, 1);
        assert!(matches!(
            report.results.get(&StepId::from("a")),
            Some(StepResult::Failed(ToolError::Failed { transient: true, .. }))
        ));
    }

    #[test]
    fn persistent_failures_are_never_retried() {
        let wf = Workflow::new("w", "q").with_step(Step::new("a", "toy.fail"));
        let report = execute_with(
            &wf,
            &registry(),
            &ToyRuntime,
            &BTreeMap::new(),
            &ExecOptions { workers: 1, retry: RetryPolicy::with_retries(5), ..Default::default() },
        );
        assert_eq!(report.failed, 1);
        assert_eq!(report.retries, 0, "transient: false skips the retry budget");
        assert_eq!(report.backoff_ticks, 0);
    }

    /// Non-critical failures — and the poisonings they cause — degrade
    /// the run instead of failing it; surviving outputs are kept.
    #[test]
    fn non_critical_failure_degrades_instead_of_failing() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("good", "toy.make"))
            .with_step(Step::new("flaky", "toy.fail").non_critical())
            .with_step(Step::new("enrich", "toy.count").bind_step("table", "flaky"))
            .with_output("good")
            .with_output("enrich");
        let report = execute(&wf, &registry(), &ToyRuntime, &BTreeMap::new());
        assert_eq!(
            report.health,
            RunHealth::Degraded { failed_steps: vec![StepId::from("flaky")] }
        );
        assert!(!report.all_ok());
        assert_eq!(report.outputs.len(), 1, "the healthy output survives");
        assert!(report.outputs.contains_key(&StepId::from("good")));
    }

    #[test]
    fn critical_failure_outranks_non_critical_degradation() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("flaky", "toy.fail").non_critical())
            .with_step(Step::new("vital", "toy.fail"));
        let report = execute(&wf, &registry(), &ToyRuntime, &BTreeMap::new());
        assert_eq!(
            report.health,
            RunHealth::Failed {
                failed_steps: vec![StepId::from("flaky"), StepId::from("vital")]
            }
        );
    }
}
