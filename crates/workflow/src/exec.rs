//! The workflow executor.
//!
//! Steps run in list order against a [`ToolRuntime`] (the binding from
//! function ids to actual measurement-tool calls lives in the `toolkit`
//! crate). Values cross step boundaries as [`TypedValue`]s — a declared
//! [`DataFormat`] plus a JSON payload, mirroring how real measurement
//! pipelines pass serialized artifacts between heterogeneous tools.
//!
//! Quality assurance is woven into execution, as SolutionWeaver embeds it
//! in generated code: every step's output is verified against its declared
//! format, empty results raise sanity findings, and failed steps poison
//! (skip) their dependents instead of aborting the whole run.

use std::collections::BTreeMap;

use registry::{DataFormat, FunctionId, Registry};
use serde::{Deserialize, Serialize};

use crate::{Binding, StepId, Workflow};

/// A value flowing between steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypedValue {
    pub format: DataFormat,
    pub value: serde_json::Value,
}

impl TypedValue {
    pub fn new(format: DataFormat, value: serde_json::Value) -> TypedValue {
        TypedValue { format, value }
    }

    /// A text value.
    pub fn text(s: &str) -> TypedValue {
        TypedValue::new(DataFormat::Text, serde_json::Value::String(s.to_string()))
    }

    /// Whether the payload is structurally empty (empty array/object/null).
    pub fn is_empty_payload(&self) -> bool {
        match &self.value {
            serde_json::Value::Null => true,
            serde_json::Value::Array(a) => a.is_empty(),
            serde_json::Value::Object(o) => o.is_empty(),
            serde_json::Value::String(s) => s.is_empty(),
            _ => false,
        }
    }
}

/// Errors a tool invocation can raise.
#[derive(Debug, Clone, PartialEq)]
pub enum ToolError {
    /// The runtime has no binding for this function.
    Unbound(FunctionId),
    /// Argument missing or of the wrong shape.
    BadArgument { function: FunctionId, message: String },
    /// The tool itself failed.
    Failed { function: FunctionId, message: String },
}

impl std::fmt::Display for ToolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ToolError::Unbound(id) => write!(f, "no runtime binding for {id}"),
            ToolError::BadArgument { function, message } => {
                write!(f, "{function}: bad argument: {message}")
            }
            ToolError::Failed { function, message } => write!(f, "{function} failed: {message}"),
        }
    }
}

impl std::error::Error for ToolError {}

/// The binding from registry functions to actual tool implementations.
pub trait ToolRuntime {
    /// Invokes `function` with named arguments.
    fn invoke(
        &self,
        function: &FunctionId,
        args: &BTreeMap<String, TypedValue>,
    ) -> Result<TypedValue, ToolError>;
}

/// Outcome of one step.
#[derive(Debug, Clone, PartialEq)]
pub enum StepResult {
    Ok(TypedValue),
    Failed(ToolError),
    /// Skipped because a dependency failed.
    Poisoned { failed_dependency: StepId },
}

impl StepResult {
    pub fn is_ok(&self) -> bool {
        matches!(self, StepResult::Ok(_))
    }

    pub fn value(&self) -> Option<&TypedValue> {
        match self {
            StepResult::Ok(v) => Some(v),
            _ => None,
        }
    }
}

/// Severity of a QA finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QaSeverity {
    Info,
    Warning,
    Error,
}

/// One woven-in QA finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QaFinding {
    pub step: StepId,
    pub severity: QaSeverity,
    pub message: String,
}

/// The full execution report.
#[derive(Debug)]
pub struct ExecutionReport {
    /// Per-step results, in execution order.
    pub results: BTreeMap<StepId, StepResult>,
    /// Workflow outputs (only the steps that succeeded).
    pub outputs: BTreeMap<StepId, TypedValue>,
    /// QA findings accumulated during the run.
    pub qa: Vec<QaFinding>,
    /// Steps executed / failed / poisoned.
    pub executed: usize,
    pub failed: usize,
    pub poisoned: usize,
}

impl ExecutionReport {
    /// Whether every step succeeded.
    pub fn all_ok(&self) -> bool {
        self.failed == 0 && self.poisoned == 0
    }

    /// The single output value, when the workflow declares exactly one.
    pub fn sole_output(&self) -> Option<&TypedValue> {
        if self.outputs.len() == 1 {
            self.outputs.values().next()
        } else {
            None
        }
    }
}

/// Executes a workflow.
///
/// `query_args` supplies values for [`Binding::QueryArg`] bindings. The
/// workflow should already have passed [`crate::check`]; execution is
/// defensive regardless.
pub fn execute(
    workflow: &Workflow,
    registry: &Registry,
    runtime: &dyn ToolRuntime,
    query_args: &BTreeMap<String, TypedValue>,
) -> ExecutionReport {
    let mut results: BTreeMap<StepId, StepResult> = BTreeMap::new();
    let mut qa: Vec<QaFinding> = Vec::new();
    let (mut executed, mut failed, mut poisoned) = (0usize, 0usize, 0usize);

    'steps: for step in &workflow.steps {
        // Resolve bindings.
        let mut args: BTreeMap<String, TypedValue> = BTreeMap::new();
        for (name, binding) in &step.inputs {
            match binding {
                Binding::Const { format, value } => {
                    args.insert(name.clone(), TypedValue::new(*format, value.clone()));
                }
                Binding::QueryArg { name: arg, format } => match query_args.get(arg) {
                    Some(v) => {
                        args.insert(name.clone(), v.clone());
                    }
                    None => {
                        qa.push(QaFinding {
                            step: step.id.clone(),
                            severity: QaSeverity::Error,
                            message: format!("query argument {arg} ({format}) not supplied"),
                        });
                        results.insert(
                            step.id.clone(),
                            StepResult::Failed(ToolError::BadArgument {
                                function: step.function.clone(),
                                message: format!("missing query argument {arg}"),
                            }),
                        );
                        failed += 1;
                        continue 'steps;
                    }
                },
                Binding::Step(target) => match results.get(target) {
                    Some(StepResult::Ok(v)) => {
                        args.insert(name.clone(), v.clone());
                    }
                    _ => {
                        results.insert(
                            step.id.clone(),
                            StepResult::Poisoned { failed_dependency: target.clone() },
                        );
                        poisoned += 1;
                        continue 'steps;
                    }
                },
            }
        }

        // Invoke (composites expand to their sequence).
        let invocation = invoke_entry(registry, runtime, &step.function, &args);
        executed += 1;
        match invocation {
            Ok(value) => {
                // Woven-in QA: declared format check + emptiness sanity.
                if let Some(entry) = registry.get(&step.function) {
                    if !value.format.compatible_with(entry.output) {
                        qa.push(QaFinding {
                            step: step.id.clone(),
                            severity: QaSeverity::Error,
                            message: format!(
                                "output format {} incompatible with declared {}",
                                value.format, entry.output
                            ),
                        });
                    }
                }
                if value.is_empty_payload() {
                    qa.push(QaFinding {
                        step: step.id.clone(),
                        severity: QaSeverity::Warning,
                        message: "step produced an empty result".to_string(),
                    });
                }
                results.insert(step.id.clone(), StepResult::Ok(value));
            }
            Err(e) => {
                qa.push(QaFinding {
                    step: step.id.clone(),
                    severity: QaSeverity::Error,
                    message: e.to_string(),
                });
                results.insert(step.id.clone(), StepResult::Failed(e));
                failed += 1;
            }
        }
    }

    let outputs: BTreeMap<StepId, TypedValue> = workflow
        .outputs
        .iter()
        .filter_map(|id| {
            results.get(id).and_then(|r| r.value()).map(|v| (id.clone(), v.clone()))
        })
        .collect();

    ExecutionReport { results, outputs, qa, executed, failed, poisoned }
}

/// Invokes a function, expanding curator-mined composites: the sequence
/// runs in order, each function's output feeding the next one's first
/// required parameter (remaining arguments pass through by name).
fn invoke_entry(
    registry: &Registry,
    runtime: &dyn ToolRuntime,
    function: &FunctionId,
    args: &BTreeMap<String, TypedValue>,
) -> Result<TypedValue, ToolError> {
    let entry = registry.get(function);
    match entry.map(|e| e.implementation.clone()) {
        Some(registry::Implementation::Composite { sequence }) => {
            let mut carried: Option<TypedValue> = None;
            for fid in &sequence {
                let mut call_args = args.clone();
                if let (Some(prev), Some(sub)) = (&carried, registry.get(fid)) {
                    if let Some(first_req) = sub.required_inputs().next() {
                        call_args.insert(first_req.name.clone(), prev.clone());
                    }
                }
                carried = Some(invoke_entry(registry, runtime, fid, &call_args)?);
            }
            carried.ok_or_else(|| ToolError::Failed {
                function: function.clone(),
                message: "composite with empty sequence".to_string(),
            })
        }
        _ => runtime.invoke(function, args),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Step;
    use registry::{CapabilityEntry, Implementation, Param, Registry};

    /// A runtime binding two toy functions.
    struct ToyRuntime;

    impl ToolRuntime for ToyRuntime {
        fn invoke(
            &self,
            function: &FunctionId,
            args: &BTreeMap<String, TypedValue>,
        ) -> Result<TypedValue, ToolError> {
            match function.0.as_str() {
                "toy.make" => Ok(TypedValue::new(
                    DataFormat::Table,
                    serde_json::json!([{"v": 1}, {"v": 2}]),
                )),
                "toy.count" => {
                    let t = args.get("table").ok_or(ToolError::BadArgument {
                        function: function.clone(),
                        message: "missing table".into(),
                    })?;
                    let n = t.value.as_array().map(|a| a.len()).unwrap_or(0);
                    Ok(TypedValue::new(DataFormat::Scalar, serde_json::json!(n)))
                }
                "toy.fail" => Err(ToolError::Failed {
                    function: function.clone(),
                    message: "intentional".into(),
                }),
                "toy.empty" => Ok(TypedValue::new(DataFormat::Table, serde_json::json!([]))),
                _ => Err(ToolError::Unbound(function.clone())),
            }
        }
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register(CapabilityEntry::new("toy.make", "toy", "makes a table", vec![], DataFormat::Table))
            .unwrap();
        r.register(CapabilityEntry::new(
            "toy.count",
            "toy",
            "counts rows",
            vec![Param::required("table", DataFormat::Table)],
            DataFormat::Scalar,
        ))
        .unwrap();
        r.register(CapabilityEntry::new("toy.fail", "toy", "always fails", vec![], DataFormat::Table))
            .unwrap();
        r.register(CapabilityEntry::new("toy.empty", "toy", "empty table", vec![], DataFormat::Table))
            .unwrap();
        let mut comp = CapabilityEntry::new(
            "macro.make_and_count",
            "composite",
            "makes then counts",
            vec![],
            DataFormat::Scalar,
        );
        comp.implementation = Implementation::Composite {
            sequence: vec![FunctionId::from("toy.make"), FunctionId::from("toy.count")],
        };
        r.register(comp).unwrap();
        r
    }

    #[test]
    fn linear_workflow_executes() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("a", "toy.make"))
            .with_step(Step::new("b", "toy.count").bind_step("table", "a"))
            .with_output("b");
        let report = execute(&wf, &registry(), &ToyRuntime, &BTreeMap::new());
        assert!(report.all_ok());
        assert_eq!(report.sole_output().unwrap().value, serde_json::json!(2));
    }

    #[test]
    fn failure_poisons_dependents() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("a", "toy.fail"))
            .with_step(Step::new("b", "toy.count").bind_step("table", "a"))
            .with_output("b");
        let report = execute(&wf, &registry(), &ToyRuntime, &BTreeMap::new());
        assert_eq!(report.failed, 1);
        assert_eq!(report.poisoned, 1);
        assert!(report.outputs.is_empty());
        assert!(matches!(
            report.results.get(&StepId::from("b")),
            Some(StepResult::Poisoned { .. })
        ));
    }

    #[test]
    fn missing_query_arg_is_reported() {
        let wf = Workflow::new("w", "q").with_step(
            Step::new("a", "toy.count").bind_arg("table", "the_table", DataFormat::Table),
        );
        let report = execute(&wf, &registry(), &ToyRuntime, &BTreeMap::new());
        assert_eq!(report.failed, 1);
        assert!(report
            .qa
            .iter()
            .any(|f| f.severity == QaSeverity::Error && f.message.contains("the_table")));
    }

    #[test]
    fn empty_output_raises_sanity_warning() {
        let wf = Workflow::new("w", "q").with_step(Step::new("a", "toy.empty"));
        let report = execute(&wf, &registry(), &ToyRuntime, &BTreeMap::new());
        assert!(report
            .qa
            .iter()
            .any(|f| f.severity == QaSeverity::Warning && f.message.contains("empty")));
    }

    #[test]
    fn composite_expands_and_chains() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("a", "macro.make_and_count"))
            .with_output("a");
        let report = execute(&wf, &registry(), &ToyRuntime, &BTreeMap::new());
        assert!(report.all_ok(), "qa: {:?}", report.qa);
        assert_eq!(report.sole_output().unwrap().value, serde_json::json!(2));
    }

    #[test]
    fn query_args_flow_into_steps() {
        let wf = Workflow::new("w", "q")
            .with_step(Step::new("a", "toy.count").bind_arg("table", "t", DataFormat::Table))
            .with_output("a");
        let mut args = BTreeMap::new();
        args.insert(
            "t".to_string(),
            TypedValue::new(DataFormat::Table, serde_json::json!([1, 2, 3])),
        );
        let report = execute(&wf, &registry(), &ToyRuntime, &args);
        assert!(report.all_ok());
        assert_eq!(report.sole_output().unwrap().value, serde_json::json!(3));
    }
}
