//! BGP update streams.
//!
//! Real collectors record a continuous update feed; the simulator derives
//! an equivalent one by diffing routing state across every scenario event
//! and emitting, per changed `(peer, prefix)`:
//!
//! * a **withdrawal** if the pair lost its route,
//! * an **announcement** with the new path if it changed or appeared,
//! * plus 0–2 deterministic *path-exploration transients* shortly after the
//!   event (BGP's well-known convergence chatter), so update-burst
//!   detectors have realistic texture to work on.
//!
//! Each update's timestamp is the event time plus a per-(peer, prefix)
//! convergence jitter of up to two minutes, derived from `stable_hash`.

use net_model::{Asn, Ipv4Net, SimTime};
use serde::{Deserialize, Serialize};
use world::events::stable_hash;
use world::Scenario;

use crate::rib::{RibEntry, RibSnapshot};

/// Kind of update.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateKind {
    /// New best path announced.
    Announce { as_path: Vec<Asn> },
    /// Route withdrawn.
    Withdraw,
}

/// One BGP update as recorded by the collector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpUpdate {
    pub time: SimTime,
    pub peer: Asn,
    pub prefix: Ipv4Net,
    pub kind: UpdateKind,
}

impl BgpUpdate {
    /// Whether this is a withdrawal.
    pub fn is_withdraw(&self) -> bool {
        matches!(self.kind, UpdateKind::Withdraw)
    }
}

/// Derives the full update stream for a scenario from the given collector
/// peers, ordered by (time, peer, prefix).
///
/// Routing state is diffed at every event *boundary* inside the horizon —
/// starts and (for bounded events) ends — so a repaired cable or a
/// withdrawn route leak produces its reconvergence churn, not just its
/// onset.
pub fn derive_updates(scenario: &Scenario, peers: &[Asn]) -> Vec<BgpUpdate> {
    let mut updates = Vec::new();
    let mut boundaries: Vec<SimTime> = scenario
        .events
        .iter()
        .flat_map(|e| [Some(e.at), e.until])
        .flatten()
        .filter(|t| scenario.horizon.contains(*t))
        .collect();
    boundaries.sort();
    boundaries.dedup();
    if boundaries.is_empty() {
        return updates;
    }

    // A duplicated peer would duplicate (peer, prefix) entries in the
    // snapshots, and the merge-join below would emit its updates twice
    // (the old map-indexed diff deduplicated implicitly).
    let mut peers: Vec<Asn> = peers.to_vec();
    peers.sort();
    peers.dedup();
    let peers = &peers[..];

    // RIB snapshots are memoized across events: a capture is one full
    // routing run plus per-(peer, origin) path materialization (the
    // dominant cost centre once routing went dense), but routing state is
    // a pure function of `(AS-graph topology, control-plane state)`.
    // Events that change neither (congestion surges, cuts on already-dead
    // cables, sub-threshold disasters) reuse the previous snapshot and
    // produce no diff, instead of recomputing one capture per event.
    // Control-plane incidents (prefix hijacks, route leaks) are
    // *topology-neutral but routing-relevant*, which is why the
    // `same_topology` check alone is not a sound skip condition — the
    // active hijack/leak set must match, too.
    let world = &scenario.world;
    let start = scenario.horizon.start;
    let mut prev_graph = crate::graph::AsGraph::at_time(scenario, start);
    let mut prev_control = scenario.control_plane_at(start);
    let mut prev = RibSnapshot::capture_with(world, &prev_graph, peers, start, &prev_control);
    for at in boundaries {
        let after_t = SimTime(at.0 + 1);
        let graph = crate::graph::AsGraph::at_time(scenario, after_t);
        let control = scenario.control_plane_at(after_t);
        if graph.same_topology(&prev_graph) && control == prev_control {
            continue;
        }
        let next = RibSnapshot::capture_with(world, &graph, peers, after_t, &control);
        diff_into(scenario, &prev, &next, at, &mut updates);
        prev = next;
        prev_graph = graph;
        prev_control = control;
    }

    updates.sort_by_key(|a| (a.time, a.peer, a.prefix));
    updates
}

/// Diffs two snapshots by merge-joining their canonically sorted entry
/// vectors — no per-diff `(peer, prefix)` index maps. Relies on
/// [`RibSnapshot::capture`]'s invariant that entries are sorted by
/// `(peer, prefix)` with no duplicates (peers are deduplicated by
/// `derive_updates`). Updates are pushed unordered here; `derive_updates`
/// sorts the full stream at the end (the `(time, peer, prefix)` key is
/// collision-free, so output order is independent of emission order).
fn diff_into(
    scenario: &Scenario,
    before: &RibSnapshot,
    after: &RibSnapshot,
    event_time: SimTime,
    out: &mut Vec<BgpUpdate>,
) {
    let seed = scenario.world.seed;
    let (b, a) = (&before.entries, &after.entries);
    let (mut i, mut j) = (0, 0);
    while i < b.len() || j < a.len() {
        let bk = b.get(i).map(|e| (e.peer, e.prefix));
        let ak = a.get(j).map(|e| (e.peer, e.prefix));
        match (bk, ak) {
            (Some(bk), ak) if ak.is_none() || bk < ak.unwrap() => {
                // Withdrawal: in before, not in after.
                let t = jittered(seed, event_time, bk.0, &bk.1, 0);
                out.push(BgpUpdate { time: t, peer: bk.0, prefix: bk.1, kind: UpdateKind::Withdraw });
                i += 1;
            }
            (bk, Some(ak)) if bk.is_none() || ak < bk.unwrap() => {
                // New route.
                announce_into(seed, event_time, &a[j], out);
                j += 1;
            }
            _ => {
                // Present in both: announce only on path change.
                if b[i].as_path != a[j].as_path {
                    announce_into(seed, event_time, &a[j], out);
                }
                i += 1;
                j += 1;
            }
        }
    }
}

/// Emits the announcement for a new/changed entry, preceded by its 0–2
/// deterministic path-exploration transients.
fn announce_into(seed: u64, event_time: SimTime, entry: &RibEntry, out: &mut Vec<BgpUpdate>) {
    let (peer, prefix) = (entry.peer, entry.prefix);
    let n_transients =
        (stable_hash(&[seed, peer.0 as u64, prefix.network().0 as u64, 0xA11]) % 3) as usize;
    for k in 0..n_transients {
        // Transient: the final path with the next hop's provider chain
        // artificially extended (prepend the peer again — synthetic
        // "exploration" path, clearly longer).
        let mut path = entry.as_path.clone();
        if let Some(&first) = path.first() {
            path.insert(0, first);
        }
        let t = jittered(seed, event_time, peer, &prefix, 1 + k as u64);
        out.push(BgpUpdate {
            time: t,
            peer,
            prefix,
            kind: UpdateKind::Announce { as_path: path },
        });
    }
    let t = jittered(seed, event_time, peer, &prefix, 10);
    out.push(BgpUpdate {
        time: t,
        peer,
        prefix,
        kind: UpdateKind::Announce { as_path: entry.as_path.clone() },
    });
}

/// Event time plus 0–89 s of deterministic convergence jitter. The jitter
/// base depends only on `(peer, prefix)` so that later `stage`s land
/// strictly later — transients always precede the settled path.
fn jittered(seed: u64, event: SimTime, peer: Asn, prefix: &Ipv4Net, stage: u64) -> SimTime {
    let h = stable_hash(&[seed, peer.0 as u64, prefix.network().0 as u64]);
    let base = (h % 90) as i64; // 0–89 s
    SimTime(event.0 + base + stage as i64 * 3 + 1)
}

/// Convenience: the updates within a half-open window.
pub fn updates_in_window(updates: &[BgpUpdate], w: net_model::TimeWindow) -> Vec<&BgpUpdate> {
    updates.iter().filter(|u| w.contains(u.time)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::{SimDuration, TimeWindow};
    use world::{generate, EventKind, WorldConfig};

    fn updates_for_cut() -> (Scenario, SimTime, Vec<BgpUpdate>) {
        let world = generate(&WorldConfig::default());
        let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let cut = SimTime::EPOCH + SimDuration::days(5);
        let s = Scenario::quiet(world, 10).with_event(EventKind::CableCut { cable }, cut);
        let peers: Vec<Asn> = s.world.ases.iter().take(40).map(|a| a.asn).collect();
        let ups = derive_updates(&s, &peers);
        (s, cut, ups)
    }

    #[test]
    fn quiet_scenario_produces_no_updates() {
        let world = generate(&WorldConfig::default());
        let s = Scenario::quiet(world, 10);
        let peers: Vec<Asn> = s.world.ases.iter().take(10).map(|a| a.asn).collect();
        assert!(derive_updates(&s, &peers).is_empty());
    }

    #[test]
    fn updates_cluster_after_the_event() {
        let (_, cut, ups) = updates_for_cut();
        assert!(!ups.is_empty());
        for u in &ups {
            assert!(u.time >= cut, "update at {} before cut {}", u.time, cut);
            assert!(u.time.0 <= cut.0 + 600, "update too late: {}", u.time);
        }
    }

    #[test]
    fn stream_is_sorted_and_deterministic() {
        let (_, _, ups1) = updates_for_cut();
        let (_, _, ups2) = updates_for_cut();
        assert_eq!(ups1, ups2);
        for w in ups1.windows(2) {
            assert!((w[0].time, w[0].peer, w[0].prefix) <= (w[1].time, w[1].peer, w[1].prefix));
        }
    }

    #[test]
    fn transients_precede_settled_announcement() {
        let (_, _, ups) = updates_for_cut();
        use std::collections::BTreeMap;
        let mut last_settled: BTreeMap<(Asn, Ipv4Net), SimTime> = BTreeMap::new();
        for u in &ups {
            if let UpdateKind::Announce { as_path } = &u.kind {
                // settled paths are simple (no duplicated head)
                if as_path.len() < 2 || as_path[0] != as_path[1] {
                    last_settled.insert((u.peer, u.prefix), u.time);
                }
            }
        }
        for u in &ups {
            if let UpdateKind::Announce { as_path } = &u.kind {
                if as_path.len() >= 2 && as_path[0] == as_path[1] {
                    let settled = last_settled.get(&(u.peer, u.prefix)).copied();
                    if let Some(st) = settled {
                        assert!(u.time < st, "transient after settle for {}", u.prefix);
                    }
                }
            }
        }
    }

    #[test]
    fn peer_order_and_duplicates_do_not_change_the_stream() {
        let world = generate(&WorldConfig::default());
        let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let cut = SimTime::EPOCH + SimDuration::days(5);
        let s = Scenario::quiet(world, 10).with_event(EventKind::CableCut { cable }, cut);
        let peers: Vec<Asn> = s.world.ases.iter().take(20).map(|a| a.asn).collect();
        let canonical = derive_updates(&s, &peers);
        assert!(!canonical.is_empty());

        let mut reversed = peers.clone();
        reversed.reverse();
        assert_eq!(derive_updates(&s, &reversed), canonical);

        let mut with_dups = peers.clone();
        with_dups.extend(peers.iter().take(5).copied());
        assert_eq!(derive_updates(&s, &with_dups), canonical);
    }

    #[test]
    fn topology_neutral_events_produce_no_updates_and_skip_captures() {
        let world = generate(&WorldConfig::default());
        let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let cut = SimTime::EPOCH + SimDuration::days(5);
        let peers: Vec<Asn> = world.ases.iter().take(20).map(|a| a.asn).collect();

        // Baseline: just the cut.
        let base = Scenario::quiet(world.clone(), 10)
            .with_event(EventKind::CableCut { cable }, cut);
        let canonical = derive_updates(&base, &peers);
        assert!(!canonical.is_empty());

        // The same cut plus congestion surges (no connectivity change) —
        // the memoized path must skip those events and emit the identical
        // stream.
        let noisy = Scenario::quiet(world, 10)
            .with_event(
                EventKind::CongestionSurge {
                    from: net_model::Region::Europe,
                    to: net_model::Region::Asia,
                    extra_ms: 40.0,
                },
                SimTime::EPOCH + SimDuration::days(2),
            )
            .with_event(EventKind::CableCut { cable }, cut)
            .with_event(
                EventKind::CongestionSurge {
                    from: net_model::Region::NorthAmerica,
                    to: net_model::Region::Europe,
                    extra_ms: 25.0,
                },
                SimTime::EPOCH + SimDuration::days(7),
            );
        assert_eq!(derive_updates(&noisy, &peers), canonical);
    }

    #[test]
    fn control_plane_events_produce_updates_despite_identical_topology() {
        // A hijack and a bounded leak change no adjacency, so the old
        // `same_topology`-only memoization would have (wrongly) skipped
        // every capture and derived an empty stream.
        let world = generate(&WorldConfig::default());
        let victim = world.prefixes[0];
        let hijacker = world
            .ases
            .iter()
            .map(|a| a.asn)
            .find(|&a| a != victim.origin)
            .unwrap();
        let at = SimTime::EPOCH + SimDuration::days(5);
        let s = Scenario::quiet(world, 10).with_event(
            EventKind::PrefixHijack { origin: hijacker, victim_prefix: victim.net },
            at,
        );
        let peers: Vec<Asn> = s.world.ases.iter().take(40).map(|a| a.asn).collect();
        let ups = derive_updates(&s, &peers);
        assert!(!ups.is_empty(), "a hijack must generate announcements");
        // Every update concerns the hijacked prefix, and the settled
        // announcements all originate at the hijacker (updates are only
        // emitted for vantage points that switched).
        for u in &ups {
            assert_eq!(u.prefix, victim.net);
            assert!(u.time >= at);
        }
        let moas: Vec<Asn> = ups
            .iter()
            .filter_map(|u| match &u.kind {
                UpdateKind::Announce { as_path } => as_path.last().copied(),
                UpdateKind::Withdraw => None,
            })
            .filter(|o| *o == hijacker)
            .collect();
        assert!(!moas.is_empty(), "hijacked announcements must carry the bogus origin");
    }

    #[test]
    fn bounded_leak_reconverges_at_both_window_edges() {
        let world = generate(&WorldConfig::default());
        let scenario0 = Scenario::quiet(world.clone(), 10);
        let graph = crate::graph::AsGraph::at_time(&scenario0, SimTime::EPOCH);
        // A multi-homed AS guarantees the leak changes some best path.
        let leaker = world
            .ases
            .iter()
            .map(|a| a.asn)
            .find(|&a| graph.providers(a).len() >= 2)
            .expect("multi-homed AS exists");
        let start = SimTime::EPOCH + SimDuration::days(4);
        let end = start + SimDuration::days(2);
        let mut s = Scenario::quiet(world, 10);
        s.push_event(EventKind::RouteLeak { leaker }, start, Some(end));
        let peers: Vec<Asn> = s.world.ases.iter().take(40).map(|a| a.asn).collect();
        let ups = derive_updates(&s, &peers);
        assert!(!ups.is_empty(), "the leak must move some best paths");
        let (onset, recovery): (Vec<_>, Vec<_>) = ups.iter().partition(|u| u.time < end);
        assert!(!onset.is_empty(), "leak onset churn");
        assert!(!recovery.is_empty(), "leak withdrawal churn at the window end");
        // Onset announcements include leak-inflated paths crossing the
        // leaker mid-path.
        let through_leaker = onset.iter().any(|u| match &u.kind {
            UpdateKind::Announce { as_path } => {
                as_path.len() > 2 && as_path[1..as_path.len() - 1].contains(&leaker)
            }
            UpdateKind::Withdraw => false,
        });
        assert!(through_leaker, "some announced path must ride the leaker");
    }

    #[test]
    fn window_filter_works() {
        let (_, cut, ups) = updates_for_cut();
        let w = TimeWindow::new(cut, SimTime(cut.0 + 600));
        assert_eq!(updates_in_window(&ups, w).len(), ups.len());
        let empty = TimeWindow::new(SimTime::EPOCH, cut);
        assert!(updates_in_window(&ups, empty).is_empty());
    }
}
