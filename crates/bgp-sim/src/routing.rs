//! Valley-free (Gao–Rexford) route computation.
//!
//! Export rules: routes learned from a customer are exported to everyone;
//! routes learned from a peer or provider are exported only to customers.
//! Selection: prefer customer routes over peer routes over provider routes
//! (local preference), then shortest AS path, then lowest next-hop ASN.
//!
//! The computation runs per destination AS in three phases, the standard
//! formulation used by AS-level simulators:
//!
//! 1. **Up phase** — BFS from the destination along customer→provider
//!    edges; reached nodes hold *customer routes*.
//! 2. **Peer phase** — any node adjacent (as peer) to a customer-routed
//!    node gains a *peer route*.
//! 3. **Down phase** — BFS along provider→customer edges from every routed
//!    node; reached nodes gain *provider routes*.
//!
//! ## Dense-index engine
//!
//! The engine works entirely in the dense index space of [`AsGraph`]: one
//! flat slot per `(destination, holder)` pair holding a compact
//! `(kind, hops, record)` triple, where `record` points into a frozen
//! parent-pointer arena. Relaxations append one arena record instead of
//! cloning a `Vec<Asn>` path, and full paths are materialized lazily on
//! [`RoutingTable::route`] — eliminating the seed algorithm's
//! O(V·E·path-len) allocation storm while producing **byte-identical**
//! routes (the arena freezes exactly the path snapshots the seed's clones
//! froze; see [`reference`] and the `dense_equivalence` suite).
//!
//! Destinations are independent, so [`RoutingTable::compute`] shards the
//! per-destination sweep across cores with `std::thread::scope`; each
//! destination is computed single-threaded, so the output is bit-identical
//! regardless of worker count.
//!
//! ## Control-plane policy overrides
//!
//! Scenario timelines can now carry control-plane incidents. Route leaks
//! change the *export policy* of one AS, so they plumb into the sweep as
//! [`PolicyOverrides`]: after the normal three phases, each leaker
//! re-announces its pre-leak best route to every neighbour the
//! valley-free export rule forbids (its providers and peers), and the
//! improvements propagate through one more deterministic phase sweep.
//! The semantics are **one leak round over the pre-leak snapshot** —
//! well-defined, deterministic, and implemented identically by the dense
//! engine and [`reference`] (pinned byte-identical by the
//! `dense_equivalence` suite). Prefix hijacks do not touch AS-level
//! routing at all — they change prefix *origination* and are arbitrated
//! per vantage point in [`crate::rib`] via [`RoutingTable::selection`].

use std::collections::{BTreeMap, VecDeque};

use net_model::Asn;
use serde::{Deserialize, Serialize};
use world::{ControlPlaneState, World};

use crate::graph::{AsGraph, NeighborKind};

/// Per-computation routing-policy overrides derived from a scenario's
/// control-plane events. Currently: the set of ASes leaking routes
/// (re-exporting peer/provider-learned routes to everyone).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyOverrides {
    /// Leaking ASes, ascending and deduplicated.
    leakers: Vec<Asn>,
}

impl PolicyOverrides {
    /// No overrides: plain Gao–Rexford export policy.
    pub fn none() -> PolicyOverrides {
        PolicyOverrides::default()
    }

    /// Overrides with the given leaking ASes.
    pub fn leaking(leakers: impl IntoIterator<Item = Asn>) -> PolicyOverrides {
        let mut leakers: Vec<Asn> = leakers.into_iter().collect();
        leakers.sort();
        leakers.dedup();
        PolicyOverrides { leakers }
    }

    /// The leaking ASes, ascending.
    pub fn leakers(&self) -> &[Asn] {
        &self.leakers
    }

    /// Whether the overrides change anything at all.
    pub fn is_empty(&self) -> bool {
        self.leakers.is_empty()
    }
}

impl From<&ControlPlaneState> for PolicyOverrides {
    fn from(state: &ControlPlaneState) -> PolicyOverrides {
        PolicyOverrides::leaking(state.leakers.iter().copied())
    }
}

/// The class of a selected route, in preference order (`Ord`: earlier
/// variants are strictly preferred — the algorithm relies on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RouteKind {
    /// The node *is* the destination (unbeatable).
    Origin,
    /// Learned from a customer (most preferred real route — it earns money).
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider (least preferred — it costs money).
    Provider,
}

/// A selected best route from one AS towards a destination AS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// AS path, starting at the route holder, ending at the destination.
    pub as_path: Vec<Asn>,
    pub kind: RouteKind,
}

impl Route {
    /// Path length in AS hops (path of `[u, d]` is one hop).
    pub fn hop_count(&self) -> usize {
        self.as_path.len().saturating_sub(1)
    }
}

/// Sentinel for "no record / no route" in the dense tables.
const NONE: u32 = u32::MAX;

/// Compact per-(destination, holder) route state: selection key plus a
/// pointer into the frozen-path arena. 12 bytes instead of a cloned path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    /// Frozen-path record index, [`NONE`] when unrouted.
    rec: u32,
    /// ASN of the next hop (`as_path[1]`), for the deterministic
    /// tie-break; 0 for origin slots (never compared — origin kind wins).
    next_asn: u32,
    /// AS-hop count of the selected path.
    hops: u16,
    kind: RouteKind,
}

const EMPTY: Slot = Slot { rec: NONE, next_asn: 0, hops: 0, kind: RouteKind::Origin };

/// One frozen-path record: `(node, parent record)`; the parent chain walks
/// towards the destination, whose record has parent [`NONE`].
type PathRec = (u32, u32);

/// Best routes towards one destination, in dense holder-index space.
#[derive(Debug, Clone, Default)]
struct DestRoutes {
    /// One slot per holder index.
    slots: Vec<Slot>,
    /// Compacted frozen-path arena the slots point into.
    records: Vec<PathRec>,
}

/// All best routes towards every destination AS.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    /// Dense index → ASN (the [`AsGraph`] index space).
    asns: Vec<Asn>,
    /// ASN → dense index.
    index: BTreeMap<Asn, u32>,
    /// Per-destination routes, indexed by the destination's dense index.
    dests: Vec<DestRoutes>,
}

impl RoutingTable {
    /// Computes best routes for every destination AS in the world,
    /// sharding destinations across all available cores.
    pub fn compute(graph: &AsGraph, world: &World) -> RoutingTable {
        Self::compute_with_threads(graph, world, default_threads())
    }

    /// [`RoutingTable::compute`] with an explicit worker count. The output
    /// is bit-identical for every `threads` value: workers partition the
    /// (independent) destinations and each destination is computed
    /// single-threaded by the same deterministic sweep.
    pub fn compute_with_threads(
        graph: &AsGraph,
        world: &World,
        threads: usize,
    ) -> RoutingTable {
        Self::compute_with(graph, world, threads, &PolicyOverrides::none())
    }

    /// [`RoutingTable::compute_with_threads`] plus control-plane policy
    /// overrides — the scenario-aware entry the RIB capture uses. The
    /// leak pass is part of the same per-destination sweep, so the
    /// output stays bit-identical for every worker count.
    pub fn compute_with(
        graph: &AsGraph,
        world: &World,
        threads: usize,
        overrides: &PolicyOverrides,
    ) -> RoutingTable {
        debug_assert_eq!(graph.node_count(), world.ases.len());
        Self::compute_for_graph_with(graph, threads, overrides)
    }

    /// Computes routes for every node of an arbitrary graph (the
    /// world-free entry point the equivalence and property tests use).
    pub fn compute_for_graph(graph: &AsGraph, threads: usize) -> RoutingTable {
        Self::compute_for_graph_with(graph, threads, &PolicyOverrides::none())
    }

    /// [`RoutingTable::compute_for_graph`] with policy overrides.
    pub fn compute_for_graph_with(
        graph: &AsGraph,
        threads: usize,
        overrides: &PolicyOverrides,
    ) -> RoutingTable {
        let n = graph.node_count();
        assert!(n < u16::MAX as usize, "hop counter is u16");
        let threads = threads.clamp(1, n.max(1));

        // Leakers as dense indices, ascending (ASes absent from this
        // graph cannot leak anything into it).
        let leakers: Vec<u32> = overrides
            .leakers()
            .iter()
            .filter_map(|&a| graph.index_of(a).map(|i| i as u32))
            .collect();
        let leakers = &leakers[..];

        let dests: Vec<DestRoutes> = if threads == 1 || n < 2 {
            let mut scratch = Scratch::new(n);
            (0..n)
                .map(|d| compute_destination(graph, d as u32, &mut scratch, leakers))
                .collect()
        } else {
            let chunk = n.div_ceil(threads);
            let mut out: Vec<DestRoutes> = Vec::with_capacity(n);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let lo = t * chunk;
                        let hi = ((t + 1) * chunk).min(n);
                        s.spawn(move || {
                            let mut scratch = Scratch::new(n);
                            (lo..hi)
                                .map(|d| {
                                    compute_destination(graph, d as u32, &mut scratch, leakers)
                                })
                                .collect::<Vec<DestRoutes>>()
                        })
                    })
                    .collect();
                for h in handles {
                    out.extend(h.join().expect("routing worker panicked"));
                }
            });
            out
        };

        RoutingTable {
            asns: graph.asn_table().to_vec(),
            index: graph.nodes().enumerate().map(|(i, a)| (a, i as u32)).collect(),
            dests,
        }
    }

    /// The best route from `src` towards `dst`, if any, with the AS path
    /// materialized from the frozen parent-pointer chain.
    pub fn route(&self, src: Asn, dst: Asn) -> Option<Route> {
        let (s, d) = (self.idx(src)?, self.idx(dst)?);
        let dest = &self.dests[d];
        let slot = dest.slots[s];
        (slot.rec != NONE).then(|| self.materialize(dest, slot))
    }

    /// The selection class of the `src → dst` route without materializing
    /// the path.
    pub fn kind(&self, src: Asn, dst: Asn) -> Option<RouteKind> {
        let slot = self.slot(src, dst)?;
        (slot.rec != NONE).then_some(slot.kind)
    }

    /// AS-hop count of the `src → dst` route without materializing the
    /// path.
    pub fn hop_count(&self, src: Asn, dst: Asn) -> Option<usize> {
        let slot = self.slot(src, dst)?;
        (slot.rec != NONE).then_some(slot.hops as usize)
    }

    /// The full selection key of the `src → dst` route —
    /// `(kind, hops, next-hop ASN)` — without materializing the path.
    /// Lexicographically smaller keys are preferred; the RIB capture uses
    /// this to arbitrate MOAS conflicts (hijacked prefix: legitimate vs
    /// bogus origin) exactly as the route selection itself would. The
    /// next-hop ASN of an origin route is `Asn(0)` (never compared: the
    /// `Origin` kind already wins).
    pub fn selection(&self, src: Asn, dst: Asn) -> Option<(RouteKind, usize, Asn)> {
        let slot = self.slot(src, dst)?;
        (slot.rec != NONE).then_some((slot.kind, slot.hops as usize, Asn(slot.next_asn)))
    }

    /// Whether `src` holds a route towards `dst` — an O(log n) + O(1)
    /// lookup.
    pub fn has_route(&self, src: Asn, dst: Asn) -> bool {
        self.slot(src, dst).is_some_and(|s| s.rec != NONE)
    }

    /// All holders with a route towards `dst`.
    pub fn reachable_from(&self, dst: Asn) -> usize {
        match self.idx(dst) {
            Some(d) => self.dests[d].slots.iter().filter(|s| s.rec != NONE).count(),
            None => 0,
        }
    }

    /// Iterates `(dst, holder, route)` in canonical (ascending ASN) order,
    /// materializing each path.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, Asn, Route)> + '_ {
        self.dests.iter().enumerate().flat_map(move |(d, dest)| {
            let dst = self.asns[d];
            dest.slots.iter().enumerate().filter(|(_, s)| s.rec != NONE).map(
                move |(h, &slot)| (dst, self.asns[h], self.materialize(dest, slot)),
            )
        })
    }

    fn idx(&self, asn: Asn) -> Option<usize> {
        self.index.get(&asn).map(|&i| i as usize)
    }

    fn slot(&self, src: Asn, dst: Asn) -> Option<Slot> {
        let (s, d) = (self.idx(src)?, self.idx(dst)?);
        Some(self.dests[d].slots[s])
    }

    fn materialize(&self, dest: &DestRoutes, slot: Slot) -> Route {
        let mut as_path = Vec::with_capacity(slot.hops as usize + 1);
        let mut r = slot.rec;
        while r != NONE {
            let (node, parent) = dest.records[r as usize];
            as_path.push(self.asns[node as usize]);
            r = parent;
        }
        Route { as_path, kind: slot.kind }
    }
}

/// Reusable per-worker buffers: route slots, the (uncompacted) frozen-path
/// arena and the BFS queue — zero allocation per destination after warmup.
struct Scratch {
    slots: Vec<Slot>,
    records: Vec<PathRec>,
    remap: Vec<u32>,
    stack: Vec<u32>,
    queue: VecDeque<u32>,
}

impl Scratch {
    fn new(n: usize) -> Scratch {
        Scratch {
            slots: vec![EMPTY; n],
            records: Vec::new(),
            remap: Vec::new(),
            stack: Vec::new(),
            queue: VecDeque::new(),
        }
    }
}

/// Whether `node` lies on the frozen path snapshot rooted at `rec` — the
/// dense equivalent of the seed's `as_path.contains(&u)` loop check.
fn chain_contains(records: &[PathRec], mut rec: u32, node: u32) -> bool {
    while rec != NONE {
        let (n, parent) = records[rec as usize];
        if n == node {
            return true;
        }
        rec = parent;
    }
    false
}

/// Computes best routes towards the destination with dense index `d`.
///
/// Mirrors the seed algorithm exactly (see [`reference`]): same three
/// phases, same relaxation rule, same deterministic tie-breaks — only the
/// data layout differs, so the selected routes (including frozen path
/// snapshots) are byte-identical. When `leakers` is non-empty a fourth
/// stage runs: the leak seeding plus one more phase sweep, again in the
/// exact order of [`reference::compute_for_destination_with`].
fn compute_destination(
    graph: &AsGraph,
    d: u32,
    scratch: &mut Scratch,
    leakers: &[u32],
) -> DestRoutes {
    let n = graph.node_count();
    let Scratch { slots, records, remap, stack, queue } = scratch;
    slots.fill(EMPTY);
    records.clear();
    queue.clear();

    records.push((d, NONE));
    slots[d as usize] = Slot { rec: 0, next_asn: 0, hops: 0, kind: RouteKind::Origin };

    // Accepts `u ← v` if `(kind, hops, next-hop ASN)` strictly improves and
    // the frozen path of `v` does not already contain `u`.
    macro_rules! relax {
        ($u:expr, $v:expr, $vs:expr, $kind:expr) => {{
            let u = $u as usize;
            let cand_hops = $vs.hops + 1;
            let next_asn = graph.asn_of($v as usize).0;
            let inc = slots[u];
            let accept = inc.rec == NONE
                || ($kind, cand_hops, next_asn) < (inc.kind, inc.hops, inc.next_asn);
            if accept && !chain_contains(records, $vs.rec, $u) {
                records.push(($u, $vs.rec));
                slots[u] = Slot {
                    rec: (records.len() - 1) as u32,
                    next_asn,
                    hops: cand_hops,
                    kind: $kind,
                };
                true
            } else {
                false
            }
        }};
    }

    // Phase 1: customer routes — BFS "up" through providers of routed
    // nodes. If v holds a route and u is a provider of v, u learns a
    // customer route via v. Label-correcting relaxation with deterministic
    // next-hop tie-break via the ASN-ordered adjacency slices.
    queue.push_back(d);
    while let Some(v) = queue.pop_front() {
        let vs = slots[v as usize];
        let (nbrs, kinds) = graph.neighbor_slices(v as usize);
        for (&u, &kind) in nbrs.iter().zip(kinds) {
            if kind != NeighborKind::Provider {
                continue; // we want u = provider of v, i.e. v sees u as Provider
            }
            if relax!(u, v, vs, RouteKind::Customer) {
                queue.push_back(u);
            }
        }
    }

    // Phase 2: peer routes — one peer hop off any customer-routed node.
    // Peer routes never beat customer routes, so nodes routed in this
    // phase can never become sources of it; iterating live state in index
    // order is equivalent to the seed's snapshot.
    for v in 0..n as u32 {
        let vs = slots[v as usize];
        if vs.rec == NONE || !matches!(vs.kind, RouteKind::Customer | RouteKind::Origin) {
            continue;
        }
        let (nbrs, kinds) = graph.neighbor_slices(v as usize);
        for (&u, &kind) in nbrs.iter().zip(kinds) {
            if kind != NeighborKind::Peer {
                continue;
            }
            relax!(u, v, vs, RouteKind::Peer);
        }
    }

    // Phase 3: provider routes — BFS "down" through customers. Any routed
    // node exports to its customers.
    queue.extend((0..n as u32).filter(|&v| slots[v as usize].rec != NONE));
    while let Some(v) = queue.pop_front() {
        let vs = slots[v as usize];
        let (nbrs, kinds) = graph.neighbor_slices(v as usize);
        for (&u, &kind) in nbrs.iter().zip(kinds) {
            if kind != NeighborKind::Customer {
                continue;
            }
            if relax!(u, v, vs, RouteKind::Provider) {
                queue.push_back(u);
            }
        }
    }

    // Leak stage: each leaker re-announces its *pre-leak* best route to
    // the neighbours the valley-free export rule forbids (providers and
    // peers — customers already received it in phase 3). A provider of
    // the leaker imports the leak as a *customer* route — more preferred
    // than what it holds, which is exactly why leaks spread — and the
    // improvements propagate through one more up/peer/down sweep.
    // Semantics: one leak round over the pre-leak snapshot, leakers in
    // ascending index order (see the module docs; [`reference`] runs the
    // identical sequence).
    if !leakers.is_empty() {
        let leaked: Vec<(u32, Slot)> = leakers
            .iter()
            .map(|&l| (l, slots[l as usize]))
            .filter(|(_, s)| {
                s.rec != NONE && matches!(s.kind, RouteKind::Peer | RouteKind::Provider)
            })
            .collect();
        queue.clear();
        for (l, ls) in leaked {
            let (nbrs, kinds) = graph.neighbor_slices(l as usize);
            for (&u, &kind) in nbrs.iter().zip(kinds) {
                // `kind` is the leaker's view of `u`; `u` classifies the
                // leaked route by its own view of the leaker.
                let accept = match kind {
                    NeighborKind::Provider => RouteKind::Customer,
                    NeighborKind::Peer => RouteKind::Peer,
                    NeighborKind::Customer => continue, // legitimate export
                };
                if relax!(u, l, ls, accept) && accept == RouteKind::Customer {
                    queue.push_back(u);
                }
            }
        }
        // Re-run phase 1: leak-gained customer routes propagate up.
        while let Some(v) = queue.pop_front() {
            let vs = slots[v as usize];
            let (nbrs, kinds) = graph.neighbor_slices(v as usize);
            for (&u, &kind) in nbrs.iter().zip(kinds) {
                if kind != NeighborKind::Provider {
                    continue;
                }
                if relax!(u, v, vs, RouteKind::Customer) {
                    queue.push_back(u);
                }
            }
        }
        // Re-run phase 2: peer spread off the (now final) customer set.
        for v in 0..n as u32 {
            let vs = slots[v as usize];
            if vs.rec == NONE
                || !matches!(vs.kind, RouteKind::Customer | RouteKind::Origin)
            {
                continue;
            }
            let (nbrs, kinds) = graph.neighbor_slices(v as usize);
            for (&u, &kind) in nbrs.iter().zip(kinds) {
                if kind != NeighborKind::Peer {
                    continue;
                }
                relax!(u, v, vs, RouteKind::Peer);
            }
        }
        // Re-run phase 3: everything exports down to customers again.
        queue.extend((0..n as u32).filter(|&v| slots[v as usize].rec != NONE));
        while let Some(v) = queue.pop_front() {
            let vs = slots[v as usize];
            let (nbrs, kinds) = graph.neighbor_slices(v as usize);
            for (&u, &kind) in nbrs.iter().zip(kinds) {
                if kind != NeighborKind::Customer {
                    continue;
                }
                if relax!(u, v, vs, RouteKind::Provider) {
                    queue.push_back(u);
                }
            }
        }
    }

    // Compact the arena down to records reachable from a final slot, in
    // deterministic holder order.
    remap.clear();
    remap.resize(records.len(), NONE);
    let mut out = DestRoutes { slots: Vec::with_capacity(n), records: Vec::new() };
    for slot in slots.iter() {
        let mut s = *slot;
        if s.rec != NONE {
            let mut r = s.rec;
            while r != NONE && remap[r as usize] == NONE {
                stack.push(r);
                r = records[r as usize].1;
            }
            while let Some(r2) = stack.pop() {
                let (node, parent) = records[r2 as usize];
                let new_parent = if parent == NONE { NONE } else { remap[parent as usize] };
                remap[r2 as usize] = out.records.len() as u32;
                out.records.push((node, new_parent));
            }
            s.rec = remap[s.rec as usize];
        }
        out.slots.push(s);
    }
    out
}

/// The default routing worker count ([`RoutingTable::compute`]'s choice):
/// one worker per available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Route preference: lower `RouteKind` wins, then fewer hops, then lowest
/// next-hop ASN for determinism.
fn better(candidate: &Route, incumbent: Option<&Route>) -> bool {
    match incumbent {
        None => true,
        Some(inc) => {
            let ck = (candidate.kind, candidate.hop_count(), candidate.as_path.get(1).copied());
            let ik = (inc.kind, inc.hop_count(), inc.as_path.get(1).copied());
            ck < ik
        }
    }
}

/// The seed (pre-dense) algorithm, retained verbatim as the ground truth
/// for the equivalence suite and as the "before" engine in the bench
/// trajectory. It clones a `Vec<Asn>` path on every accepted relaxation —
/// exactly the allocation storm the dense engine eliminates.
pub mod reference {
    use super::*;

    /// Computes best routes for every destination AS in the world.
    pub fn compute(graph: &AsGraph, world: &World) -> BTreeMap<Asn, BTreeMap<Asn, Route>> {
        compute_with(graph, world, &PolicyOverrides::none())
    }

    /// [`compute`] with control-plane policy overrides (the ground truth
    /// for the dense engine's leak stage).
    pub fn compute_with(
        graph: &AsGraph,
        world: &World,
        overrides: &PolicyOverrides,
    ) -> BTreeMap<Asn, BTreeMap<Asn, Route>> {
        world
            .ases
            .iter()
            .map(|a| (a.asn, compute_for_destination_with(graph, a.asn, overrides)))
            .collect()
    }

    /// Computes best routes towards a single destination.
    pub fn compute_for_destination(graph: &AsGraph, dst: Asn) -> BTreeMap<Asn, Route> {
        compute_for_destination_with(graph, dst, &PolicyOverrides::none())
    }

    /// [`compute_for_destination`] plus the leak stage: each leaker
    /// re-announces its pre-leak best route to its providers and peers
    /// (one leak round over the pre-leak snapshot, leakers in ascending
    /// ASN order), then customer-route propagation, peer spread and the
    /// downward export re-run — the exact sequence the dense engine's
    /// leak stage performs.
    pub fn compute_for_destination_with(
        graph: &AsGraph,
        dst: Asn,
        overrides: &PolicyOverrides,
    ) -> BTreeMap<Asn, Route> {
        let mut best: BTreeMap<Asn, Route> = BTreeMap::new();
        best.insert(dst, Route { as_path: vec![dst], kind: RouteKind::Origin });

        // Phase 1: customer routes.
        let mut queue: VecDeque<Asn> = VecDeque::new();
        queue.push_back(dst);
        while let Some(v) = queue.pop_front() {
            let v_route = best.get(&v).expect("queued nodes are routed").clone();
            for (u, kind) in graph.neighbors(v) {
                if kind != NeighborKind::Provider {
                    continue;
                }
                if v_route.as_path.contains(&u) {
                    continue; // never extend a path through itself
                }
                let candidate = Route {
                    as_path: std::iter::once(u).chain(v_route.as_path.iter().copied()).collect(),
                    kind: RouteKind::Customer,
                };
                if better(&candidate, best.get(&u)) {
                    best.insert(u, candidate);
                    queue.push_back(u);
                }
            }
        }

        // Phase 2: peer routes.
        let customer_routed: Vec<(Asn, Route)> = best
            .iter()
            .filter(|(_, r)| matches!(r.kind, RouteKind::Customer | RouteKind::Origin))
            .map(|(a, r)| (*a, r.clone()))
            .collect();
        for (v, v_route) in customer_routed {
            for (u, kind) in graph.neighbors(v) {
                if kind != NeighborKind::Peer {
                    continue;
                }
                if v_route.as_path.contains(&u) {
                    continue;
                }
                let candidate = Route {
                    as_path: std::iter::once(u).chain(v_route.as_path.iter().copied()).collect(),
                    kind: RouteKind::Peer,
                };
                if better(&candidate, best.get(&u)) {
                    best.insert(u, candidate);
                }
            }
        }

        // Phase 3: provider routes.
        let mut queue: VecDeque<Asn> = best.keys().copied().collect();
        while let Some(v) = queue.pop_front() {
            let v_route = best.get(&v).expect("queued nodes are routed").clone();
            for (u, kind) in graph.neighbors(v) {
                if kind != NeighborKind::Customer {
                    continue;
                }
                if v_route.as_path.contains(&u) {
                    continue;
                }
                let candidate = Route {
                    as_path: std::iter::once(u).chain(v_route.as_path.iter().copied()).collect(),
                    kind: RouteKind::Provider,
                };
                if better(&candidate, best.get(&u)) {
                    best.insert(u, candidate);
                    queue.push_back(u);
                }
            }
        }

        if overrides.is_empty() {
            return best;
        }

        // Leak seeding: pre-leak snapshots, leakers ascending.
        let leaked: Vec<(Asn, Route)> = overrides
            .leakers()
            .iter()
            .filter_map(|&l| best.get(&l).map(|r| (l, r.clone())))
            .filter(|(_, r)| matches!(r.kind, RouteKind::Peer | RouteKind::Provider))
            .collect();
        let mut queue: VecDeque<Asn> = VecDeque::new();
        for (l, r) in leaked {
            for (u, kind) in graph.neighbors(l) {
                let accept = match kind {
                    NeighborKind::Provider => RouteKind::Customer,
                    NeighborKind::Peer => RouteKind::Peer,
                    NeighborKind::Customer => continue, // legitimate export
                };
                if r.as_path.contains(&u) {
                    continue;
                }
                let candidate = Route {
                    as_path: std::iter::once(u).chain(r.as_path.iter().copied()).collect(),
                    kind: accept,
                };
                if better(&candidate, best.get(&u)) {
                    best.insert(u, candidate);
                    if accept == RouteKind::Customer {
                        queue.push_back(u);
                    }
                }
            }
        }

        // Re-run phase 1: leak-gained customer routes propagate up.
        while let Some(v) = queue.pop_front() {
            let v_route = best.get(&v).expect("queued nodes are routed").clone();
            for (u, kind) in graph.neighbors(v) {
                if kind != NeighborKind::Provider {
                    continue;
                }
                if v_route.as_path.contains(&u) {
                    continue;
                }
                let candidate = Route {
                    as_path: std::iter::once(u).chain(v_route.as_path.iter().copied()).collect(),
                    kind: RouteKind::Customer,
                };
                if better(&candidate, best.get(&u)) {
                    best.insert(u, candidate);
                    queue.push_back(u);
                }
            }
        }

        // Re-run phase 2: peer spread off the final customer set.
        let customer_routed: Vec<(Asn, Route)> = best
            .iter()
            .filter(|(_, r)| matches!(r.kind, RouteKind::Customer | RouteKind::Origin))
            .map(|(a, r)| (*a, r.clone()))
            .collect();
        for (v, v_route) in customer_routed {
            for (u, kind) in graph.neighbors(v) {
                if kind != NeighborKind::Peer {
                    continue;
                }
                if v_route.as_path.contains(&u) {
                    continue;
                }
                let candidate = Route {
                    as_path: std::iter::once(u).chain(v_route.as_path.iter().copied()).collect(),
                    kind: RouteKind::Peer,
                };
                if better(&candidate, best.get(&u)) {
                    best.insert(u, candidate);
                }
            }
        }

        // Re-run phase 3: downward export of everything that improved.
        let mut queue: VecDeque<Asn> = best.keys().copied().collect();
        while let Some(v) = queue.pop_front() {
            let v_route = best.get(&v).expect("queued nodes are routed").clone();
            for (u, kind) in graph.neighbors(v) {
                if kind != NeighborKind::Customer {
                    continue;
                }
                if v_route.as_path.contains(&u) {
                    continue;
                }
                let candidate = Route {
                    as_path: std::iter::once(u).chain(v_route.as_path.iter().copied()).collect(),
                    kind: RouteKind::Provider,
                };
                if better(&candidate, best.get(&u)) {
                    best.insert(u, candidate);
                    queue.push_back(u);
                }
            }
        }

        best
    }
}

/// Checks that an AS path is valley-free given the graph: once the path
/// goes down (provider→customer) or sideways (peer), it must never go up
/// or sideways again. Each window is an O(log deg) adjacency lookup.
pub fn is_valley_free(graph: &AsGraph, path: &[Asn]) -> bool {
    #[derive(PartialEq, PartialOrd)]
    enum Phase {
        Up,
        Side,
        Down,
    }
    let mut phase = Phase::Up;
    for w in path.windows(2) {
        let (u, v) = (w[0], w[1]);
        // Edge direction from u's perspective.
        let kind = match graph.kind_between(u, v) {
            Some(k) => k,
            None => return false, // not even an adjacency
        };
        match kind {
            NeighborKind::Provider => {
                // going up
                if phase != Phase::Up {
                    return false;
                }
            }
            NeighborKind::Peer => {
                if phase != Phase::Up {
                    return false;
                }
                phase = Phase::Side;
            }
            NeighborKind::Customer => {
                if phase == Phase::Side || phase == Phase::Up {
                    phase = Phase::Down;
                } // staying Down is fine
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::SimTime;
    use world::{generate, Scenario, WorldConfig};

    fn routing() -> (Scenario, AsGraph, RoutingTable) {
        let world = generate(&WorldConfig::default());
        let scenario = Scenario::quiet(world, 10);
        let g = AsGraph::at_time(&scenario, SimTime::EPOCH);
        let rt = RoutingTable::compute(&g, &scenario.world);
        (scenario, g, rt)
    }

    #[test]
    fn origin_routes_itself() {
        let (scenario, _, rt) = routing();
        let asn = scenario.world.ases[0].asn;
        let r = rt.route(asn, asn).unwrap();
        assert_eq!(r.kind, RouteKind::Origin);
        assert_eq!(r.as_path, vec![asn]);
    }

    #[test]
    fn network_is_mostly_reachable() {
        let (scenario, _, rt) = routing();
        let n = scenario.world.ases.len();
        for a in &scenario.world.ases {
            let reach = rt.reachable_from(a.asn);
            assert!(
                reach as f64 > 0.9 * n as f64,
                "{} reachable from only {reach}/{n}",
                a.name
            );
        }
    }

    #[test]
    fn all_selected_paths_are_valley_free() {
        let (_, g, rt) = routing();
        for (_, _, route) in rt.iter() {
            assert!(
                is_valley_free(&g, &route.as_path),
                "path {:?} has a valley",
                route.as_path
            );
        }
    }

    #[test]
    fn paths_start_at_holder_and_end_at_destination() {
        let (_, _, rt) = routing();
        for (dst, src, route) in rt.iter() {
            assert_eq!(route.as_path.first(), Some(&src));
            assert_eq!(route.as_path.last(), Some(&dst));
        }
    }

    #[test]
    fn customer_routes_preferred_over_provider_routes() {
        // Structural check: where both a customer and provider path could
        // exist, the selected kind must be the most preferred class. We
        // verify no selected route violates preference against an obvious
        // alternative: a provider route whose next hop also holds a
        // customer route of equal length to the same destination.
        let (_, g, rt) = routing();
        for (dst, src, route) in rt.iter() {
            if route.kind == RouteKind::Provider {
                // src must have no customer or peer route available:
                // no customer c of src with a route to dst shorter or equal.
                for c in g.customers(src) {
                    if let Some(ck) = rt.kind(c, dst) {
                        if matches!(ck, RouteKind::Customer | RouteKind::Origin) {
                            // src could import this as a customer route.
                            panic!(
                                "{src} selected provider route to {dst} while customer {c} offers one"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn paths_are_simple() {
        let (_, _, rt) = routing();
        for (_, _, route) in rt.iter() {
            let mut p = route.as_path.clone();
            p.sort();
            p.dedup();
            assert_eq!(p.len(), route.as_path.len(), "loop in {:?}", route.as_path);
        }
    }

    #[test]
    fn compact_accessors_agree_with_materialized_routes() {
        let (_, _, rt) = routing();
        for (dst, src, route) in rt.iter() {
            assert_eq!(rt.kind(src, dst), Some(route.kind));
            assert_eq!(rt.hop_count(src, dst), Some(route.hop_count()));
            assert!(rt.has_route(src, dst));
            assert_eq!(rt.route(src, dst), Some(route));
        }
    }

    #[test]
    fn unknown_asns_are_unrouted() {
        let (scenario, _, rt) = routing();
        let known = scenario.world.ases[0].asn;
        assert_eq!(rt.route(Asn(1), known), None);
        assert_eq!(rt.route(known, Asn(1)), None);
        assert!(!rt.has_route(Asn(1), known));
        assert_eq!(rt.reachable_from(Asn(1)), 0);
    }
}
