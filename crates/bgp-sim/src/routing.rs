//! Valley-free (Gao–Rexford) route computation.
//!
//! Export rules: routes learned from a customer are exported to everyone;
//! routes learned from a peer or provider are exported only to customers.
//! Selection: prefer customer routes over peer routes over provider routes
//! (local preference), then shortest AS path, then lowest next-hop ASN.
//!
//! The computation runs per destination AS in three phases, the standard
//! formulation used by AS-level simulators:
//!
//! 1. **Up phase** — BFS from the destination along customer→provider
//!    edges; reached nodes hold *customer routes*.
//! 2. **Peer phase** — any node adjacent (as peer) to a customer-routed
//!    node gains a *peer route*.
//! 3. **Down phase** — BFS along provider→customer edges from every routed
//!    node; reached nodes gain *provider routes*.

use std::collections::{BTreeMap, VecDeque};

use net_model::Asn;
use serde::{Deserialize, Serialize};
use world::World;

use crate::graph::{AsGraph, NeighborKind};

/// The class of a selected route, in preference order (`Ord`: earlier
/// variants are strictly preferred — the algorithm relies on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RouteKind {
    /// The node *is* the destination (unbeatable).
    Origin,
    /// Learned from a customer (most preferred real route — it earns money).
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider (least preferred — it costs money).
    Provider,
}

/// A selected best route from one AS towards a destination AS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// AS path, starting at the route holder, ending at the destination.
    pub as_path: Vec<Asn>,
    pub kind: RouteKind,
}

impl Route {
    /// Path length in AS hops (path of `[u, d]` is one hop).
    pub fn hop_count(&self) -> usize {
        self.as_path.len().saturating_sub(1)
    }
}

/// All best routes towards every destination AS.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    /// destination → (holder → best route)
    routes: BTreeMap<Asn, BTreeMap<Asn, Route>>,
}

impl RoutingTable {
    /// Computes best routes for every destination AS in the world.
    pub fn compute(graph: &AsGraph, world: &World) -> RoutingTable {
        let mut routes = BTreeMap::new();
        for dst in world.ases.iter().map(|a| a.asn) {
            routes.insert(dst, Self::compute_for_destination(graph, dst));
        }
        RoutingTable { routes }
    }

    /// Computes best routes towards a single destination.
    pub fn compute_for_destination(graph: &AsGraph, dst: Asn) -> BTreeMap<Asn, Route> {
        let mut best: BTreeMap<Asn, Route> = BTreeMap::new();
        best.insert(dst, Route { as_path: vec![dst], kind: RouteKind::Origin });

        // Phase 1: customer routes — BFS "up" through providers of routed
        // nodes. If v holds a route and u is a provider of v, u learns a
        // customer route via v. Process in BFS order for shortest paths;
        // deterministic next-hop tie-break via ordered adjacency.
        let mut queue: VecDeque<Asn> = VecDeque::new();
        queue.push_back(dst);
        while let Some(v) = queue.pop_front() {
            let v_route = best.get(&v).expect("queued nodes are routed").clone();
            for (u, kind) in graph.neighbors(v) {
                if kind != NeighborKind::Provider {
                    continue; // we want u = provider of v, i.e. v sees u as Provider
                }
                if v_route.as_path.contains(&u) {
                    continue; // never extend a path through itself
                }
                let candidate = Route {
                    as_path: std::iter::once(u).chain(v_route.as_path.iter().copied()).collect(),
                    kind: RouteKind::Customer,
                };
                if better(&candidate, best.get(&u)) {
                    best.insert(u, candidate);
                    queue.push_back(u);
                }
            }
        }

        // Phase 2: peer routes — one peer hop off any customer-routed node.
        let customer_routed: Vec<(Asn, Route)> = best
            .iter()
            .filter(|(_, r)| matches!(r.kind, RouteKind::Customer | RouteKind::Origin))
            .map(|(a, r)| (*a, r.clone()))
            .collect();
        for (v, v_route) in customer_routed {
            for (u, kind) in graph.neighbors(v) {
                if kind != NeighborKind::Peer {
                    continue;
                }
                if v_route.as_path.contains(&u) {
                    continue;
                }
                let candidate = Route {
                    as_path: std::iter::once(u).chain(v_route.as_path.iter().copied()).collect(),
                    kind: RouteKind::Peer,
                };
                if better(&candidate, best.get(&u)) {
                    best.insert(u, candidate);
                }
            }
        }

        // Phase 3: provider routes — BFS "down" through customers. Any
        // routed node exports to its customers.
        let mut queue: VecDeque<Asn> = best.keys().copied().collect();
        while let Some(v) = queue.pop_front() {
            let v_route = best.get(&v).expect("queued nodes are routed").clone();
            // v exports customer routes to customers always; peer/provider
            // routes also go to customers. So any route v holds is
            // exportable to v's customers.
            for (u, kind) in graph.neighbors(v) {
                if kind != NeighborKind::Customer {
                    continue;
                }
                if v_route.as_path.contains(&u) {
                    continue;
                }
                let candidate = Route {
                    as_path: std::iter::once(u).chain(v_route.as_path.iter().copied()).collect(),
                    kind: RouteKind::Provider,
                };
                if better(&candidate, best.get(&u)) {
                    best.insert(u, candidate);
                    queue.push_back(u);
                }
            }
        }

        best
    }

    /// The best route from `src` towards `dst`, if any.
    pub fn route(&self, src: Asn, dst: Asn) -> Option<&Route> {
        self.routes.get(&dst).and_then(|m| m.get(&src))
    }

    /// All holders with a route towards `dst`.
    pub fn reachable_from(&self, dst: Asn) -> usize {
        self.routes.get(&dst).map_or(0, |m| m.len())
    }

    /// Iterates `(dst, holder, route)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, Asn, &Route)> + '_ {
        self.routes
            .iter()
            .flat_map(|(dst, m)| m.iter().map(move |(src, r)| (*dst, *src, r)))
    }
}

/// Route preference: lower `RouteKind` wins, then fewer hops, then lowest
/// next-hop ASN for determinism.
fn better(candidate: &Route, incumbent: Option<&Route>) -> bool {
    match incumbent {
        None => true,
        Some(inc) => {
            let ck = (candidate.kind, candidate.hop_count(), candidate.as_path.get(1).copied());
            let ik = (inc.kind, inc.hop_count(), inc.as_path.get(1).copied());
            ck < ik
        }
    }
}

/// Checks that an AS path is valley-free given the graph: once the path
/// goes down (provider→customer) or sideways (peer), it must never go up
/// or sideways again.
pub fn is_valley_free(graph: &AsGraph, path: &[Asn]) -> bool {
    #[derive(PartialEq, PartialOrd)]
    enum Phase {
        Up,
        Side,
        Down,
    }
    let mut phase = Phase::Up;
    for w in path.windows(2) {
        let (u, v) = (w[0], w[1]);
        // Edge direction from u's perspective.
        let kind = match graph.neighbors(u).find(|(n, _)| *n == v) {
            Some((_, k)) => k,
            None => return false, // not even an adjacency
        };
        match kind {
            NeighborKind::Provider => {
                // going up
                if phase != Phase::Up {
                    return false;
                }
            }
            NeighborKind::Peer => {
                if phase != Phase::Up {
                    return false;
                }
                phase = Phase::Side;
            }
            NeighborKind::Customer => {
                if phase == Phase::Side || phase == Phase::Up {
                    phase = Phase::Down;
                } // staying Down is fine
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::SimTime;
    use world::{generate, Scenario, WorldConfig};

    fn routing() -> (Scenario, AsGraph, RoutingTable) {
        let world = generate(&WorldConfig::default());
        let scenario = Scenario::quiet(world, 10);
        let g = AsGraph::at_time(&scenario, SimTime::EPOCH);
        let rt = RoutingTable::compute(&g, &scenario.world);
        (scenario, g, rt)
    }

    #[test]
    fn origin_routes_itself() {
        let (scenario, _, rt) = routing();
        let asn = scenario.world.ases[0].asn;
        let r = rt.route(asn, asn).unwrap();
        assert_eq!(r.kind, RouteKind::Origin);
        assert_eq!(r.as_path, vec![asn]);
    }

    #[test]
    fn network_is_mostly_reachable() {
        let (scenario, _, rt) = routing();
        let n = scenario.world.ases.len();
        for a in &scenario.world.ases {
            let reach = rt.reachable_from(a.asn);
            assert!(
                reach as f64 > 0.9 * n as f64,
                "{} reachable from only {reach}/{n}",
                a.name
            );
        }
    }

    #[test]
    fn all_selected_paths_are_valley_free() {
        let (_, g, rt) = routing();
        for (_, _, route) in rt.iter() {
            assert!(
                is_valley_free(&g, &route.as_path),
                "path {:?} has a valley",
                route.as_path
            );
        }
    }

    #[test]
    fn paths_start_at_holder_and_end_at_destination() {
        let (_, _, rt) = routing();
        for (dst, src, route) in rt.iter() {
            assert_eq!(route.as_path.first(), Some(&src));
            assert_eq!(route.as_path.last(), Some(&dst));
        }
    }

    #[test]
    fn customer_routes_preferred_over_provider_routes() {
        // Structural check: where both a customer and provider path could
        // exist, the selected kind must be the most preferred class. We
        // verify no selected route violates preference against an obvious
        // alternative: a provider route whose next hop also holds a
        // customer route of equal length to the same destination.
        let (_, g, rt) = routing();
        for (dst, src, route) in rt.iter() {
            if route.kind == RouteKind::Provider {
                // src must have no customer or peer route available:
                // no customer c of src with a route to dst shorter or equal.
                for c in g.customers(src) {
                    if let Some(cr) = rt.route(c, dst) {
                        if matches!(cr.kind, RouteKind::Customer | RouteKind::Origin) {
                            // src could import this as a customer route.
                            panic!(
                                "{src} selected provider route to {dst} while customer {c} offers one"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn paths_are_simple() {
        let (_, _, rt) = routing();
        for (_, _, route) in rt.iter() {
            let mut p = route.as_path.clone();
            p.sort();
            p.dedup();
            assert_eq!(p.len(), route.as_path.len(), "loop in {:?}", route.as_path);
        }
    }
}
