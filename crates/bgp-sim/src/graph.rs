//! The AS-level graph as seen by BGP at one instant.
//!
//! Business relationships come from the world; an adjacency is *usable*
//! only while at least one of its IP links is up. When a cable cut downs
//! every link between two ASes, the adjacency vanishes and routing must
//! find valley-free alternatives — that is the mechanism by which physical
//! failures become routing events.
//!
//! The graph is stored in **dense-index CSR form**: ASNs map once to
//! contiguous `usize` indices (the same ascending-ASN order as
//! `World::ases`), and adjacency lives in two flat arrays sliced by a
//! per-node offset table. The routing engine works entirely in index
//! space — no per-node map lookups, no allocation — and neighbour slices
//! are sorted by ASN so `kind_between` is an O(log deg) binary search.

use std::collections::BTreeMap;

use net_model::{Asn, SimTime};
use world::{RelKind, Scenario};

/// Relationship of a neighbour from the perspective of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NeighborKind {
    /// The neighbour pays us (we are their provider).
    Customer,
    /// Settlement-free peer.
    Peer,
    /// We pay the neighbour (they are our provider).
    Provider,
}

/// Immutable dense-index adjacency view of the AS graph at an instant.
#[derive(Debug, Clone)]
pub struct AsGraph {
    /// Dense index → ASN, ascending (index space shared with
    /// `World::asn_position`).
    asns: Vec<Asn>,
    /// ASN → dense index.
    index: BTreeMap<Asn, u32>,
    /// CSR offsets: node `i`'s neighbours live at `offsets[i]..offsets[i+1]`.
    offsets: Vec<u32>,
    /// Neighbour dense indices, ascending within each node's slice.
    nbr_index: Vec<u32>,
    /// Kind of each neighbour, from the node's perspective (parallel to
    /// `nbr_index`).
    nbr_kind: Vec<NeighborKind>,
}

impl AsGraph {
    /// Builds the graph for the scenario at time `t`.
    pub fn at_time(scenario: &Scenario, t: SimTime) -> AsGraph {
        let world = &scenario.world;
        let down = scenario.links_down_at(t);
        // An adjacency is live while at least one of its links is up.
        let mut live: std::collections::BTreeSet<(Asn, Asn)> = std::collections::BTreeSet::new();
        for link in &world.links {
            if !down.contains(&link.id) {
                live.insert(link.as_pair());
            }
        }
        let asns: Vec<Asn> = world.ases.iter().map(|a| a.asn).collect();
        let edges = world.relationships.iter().filter_map(|rel| {
            let pair = if rel.a <= rel.b { (rel.a, rel.b) } else { (rel.b, rel.a) };
            live.contains(&pair).then_some((rel.a, rel.b, rel.kind))
        });
        Self::build(asns, edges)
    }

    /// Builds a graph from an explicit node set and relationship edges —
    /// the constructor the equivalence/property tests use to exercise
    /// arbitrary topologies without generating a world. For
    /// `RelKind::ProviderCustomer`, `a` is the provider of `b`.
    pub fn from_relationships(
        mut asns: Vec<Asn>,
        edges: impl IntoIterator<Item = (Asn, Asn, RelKind)>,
    ) -> AsGraph {
        asns.sort();
        asns.dedup();
        Self::build(asns, edges)
    }

    fn build(asns: Vec<Asn>, edges: impl IntoIterator<Item = (Asn, Asn, RelKind)>) -> AsGraph {
        let index: BTreeMap<Asn, u32> =
            asns.iter().enumerate().map(|(i, &a)| (a, i as u32)).collect();
        // Per-node sorted maps first (later relationship rows overwrite
        // earlier ones for the same pair, matching the seed semantics),
        // then flatten to CSR.
        let mut adj: Vec<BTreeMap<u32, NeighborKind>> = vec![BTreeMap::new(); asns.len()];
        for (a, b, kind) in edges {
            let (ia, ib) = match (index.get(&a), index.get(&b)) {
                (Some(&ia), Some(&ib)) => (ia, ib),
                _ => continue,
            };
            match kind {
                RelKind::ProviderCustomer => {
                    // `a` is provider of `b`.
                    adj[ia as usize].insert(ib, NeighborKind::Customer);
                    adj[ib as usize].insert(ia, NeighborKind::Provider);
                }
                RelKind::Peer => {
                    adj[ia as usize].insert(ib, NeighborKind::Peer);
                    adj[ib as usize].insert(ia, NeighborKind::Peer);
                }
            }
        }
        let mut offsets = Vec::with_capacity(asns.len() + 1);
        let mut nbr_index = Vec::new();
        let mut nbr_kind = Vec::new();
        offsets.push(0u32);
        for m in &adj {
            for (&n, &k) in m {
                nbr_index.push(n);
                nbr_kind.push(k);
            }
            offsets.push(nbr_index.len() as u32);
        }
        AsGraph { asns, index, offsets, nbr_index, nbr_kind }
    }

    /// Whether two graphs describe the identical topology (same nodes,
    /// same CSR adjacency, same relationship kinds). Routing — and
    /// therefore any RIB snapshot — is a pure function of the topology,
    /// so equal graphs let callers memoize routing state across scenario
    /// events that did not change connectivity.
    pub fn same_topology(&self, other: &AsGraph) -> bool {
        self.asns == other.asns
            && self.offsets == other.offsets
            && self.nbr_index == other.nbr_index
            && self.nbr_kind == other.nbr_kind
    }

    /// All nodes, ascending.
    pub fn nodes(&self) -> impl Iterator<Item = Asn> + '_ {
        self.asns.iter().copied()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.asns.len()
    }

    /// Number of (undirected) adjacencies.
    pub fn edge_count(&self) -> usize {
        self.nbr_index.len() / 2
    }

    /// The ASN at a dense index.
    pub fn asn_of(&self, idx: usize) -> Asn {
        self.asns[idx]
    }

    /// The dense index of an ASN.
    pub fn index_of(&self, asn: Asn) -> Option<usize> {
        self.index.get(&asn).map(|&i| i as usize)
    }

    /// Dense index → ASN table (index space of the routing engine).
    pub fn asn_table(&self) -> &[Asn] {
        &self.asns
    }

    /// Neighbour slice of a dense index: `(neighbour index, kind)` pairs,
    /// ascending by neighbour index (equivalently, by neighbour ASN).
    pub fn neighbor_slices(&self, idx: usize) -> (&[u32], &[NeighborKind]) {
        let (lo, hi) = (self.offsets[idx] as usize, self.offsets[idx + 1] as usize);
        (&self.nbr_index[lo..hi], &self.nbr_kind[lo..hi])
    }

    /// Neighbours of `asn` with their kinds (from `asn`'s perspective),
    /// ascending by neighbour ASN.
    pub fn neighbors(&self, asn: Asn) -> impl Iterator<Item = (Asn, NeighborKind)> + '_ {
        let (idx, kinds) = match self.index_of(asn) {
            Some(i) => self.neighbor_slices(i),
            None => (&[] as &[u32], &[] as &[NeighborKind]),
        };
        idx.iter().zip(kinds).map(|(&n, &k)| (self.asns[n as usize], k))
    }

    /// The customers of `asn`.
    pub fn customers(&self, asn: Asn) -> Vec<Asn> {
        self.neighbors(asn).filter(|(_, k)| *k == NeighborKind::Customer).map(|(n, _)| n).collect()
    }

    /// The providers of `asn`.
    pub fn providers(&self, asn: Asn) -> Vec<Asn> {
        self.neighbors(asn).filter(|(_, k)| *k == NeighborKind::Provider).map(|(n, _)| n).collect()
    }

    /// The peers of `asn`.
    pub fn peers(&self, asn: Asn) -> Vec<Asn> {
        self.neighbors(asn).filter(|(_, k)| *k == NeighborKind::Peer).map(|(n, _)| n).collect()
    }

    /// Whether an adjacency exists.
    pub fn adjacent(&self, a: Asn, b: Asn) -> bool {
        self.kind_between(a, b).is_some()
    }

    /// The kind of `b` from `a`'s perspective, if adjacent — an O(log deg)
    /// binary search over `a`'s sorted neighbour slice.
    pub fn kind_between(&self, a: Asn, b: Asn) -> Option<NeighborKind> {
        let ia = self.index_of(a)?;
        let ib = *self.index.get(&b)?;
        let (idx, kinds) = self.neighbor_slices(ia);
        idx.binary_search(&ib).ok().map(|pos| kinds[pos])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::SimDuration;
    use world::{generate, EventKind, WorldConfig};

    #[test]
    fn graph_reflects_world_relationships() {
        let world = generate(&WorldConfig::default());
        let scenario = Scenario::quiet(world, 10);
        let g = AsGraph::at_time(&scenario, scenario.now);
        assert_eq!(g.node_count(), scenario.world.ases.len());
        assert!(g.edge_count() > 100);
    }

    #[test]
    fn provider_and_customer_views_are_mirrored() {
        let world = generate(&WorldConfig::default());
        let scenario = Scenario::quiet(world, 10);
        let g = AsGraph::at_time(&scenario, scenario.now);
        for asn in g.nodes().collect::<Vec<_>>() {
            for cust in g.customers(asn) {
                assert!(g.providers(cust).contains(&asn));
            }
            for peer in g.peers(asn) {
                assert!(g.peers(peer).contains(&asn));
            }
        }
    }

    #[test]
    fn cable_cut_can_remove_adjacencies() {
        let world = generate(&WorldConfig::default());
        let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let cut_at = net_model::SimTime::EPOCH + SimDuration::days(5);
        let scenario =
            Scenario::quiet(world, 10).with_event(EventKind::CableCut { cable }, cut_at);
        let before = AsGraph::at_time(&scenario, cut_at - SimDuration::hours(1));
        let after = AsGraph::at_time(&scenario, cut_at + SimDuration::hours(1));
        assert!(after.edge_count() <= before.edge_count());
    }

    #[test]
    fn dense_index_round_trips_and_orders_neighbors() {
        let world = generate(&WorldConfig::default());
        let scenario = Scenario::quiet(world, 10);
        let g = AsGraph::at_time(&scenario, scenario.now);
        for (i, asn) in g.nodes().enumerate() {
            assert_eq!(g.asn_of(i), asn);
            assert_eq!(g.index_of(asn), Some(i));
            assert_eq!(scenario.world.asn_position(asn), Some(i), "index space matches World");
            let nbrs: Vec<Asn> = g.neighbors(asn).map(|(n, _)| n).collect();
            let mut sorted = nbrs.clone();
            sorted.sort();
            assert_eq!(nbrs, sorted, "neighbour slice of {asn} is ASN-ascending");
        }
    }

    #[test]
    fn kind_between_agrees_with_neighbor_scan() {
        let world = generate(&WorldConfig::default());
        let scenario = Scenario::quiet(world, 10);
        let g = AsGraph::at_time(&scenario, scenario.now);
        let nodes: Vec<Asn> = g.nodes().collect();
        for &a in nodes.iter().take(40) {
            for &b in nodes.iter().take(40) {
                let scan = g.neighbors(a).find(|(n, _)| *n == b).map(|(_, k)| k);
                assert_eq!(g.kind_between(a, b), scan);
                assert_eq!(g.adjacent(a, b), scan.is_some());
            }
        }
    }

    #[test]
    fn from_relationships_builds_expected_topology() {
        let g = AsGraph::from_relationships(
            vec![Asn(30), Asn(10), Asn(20)],
            vec![
                (Asn(10), Asn(20), RelKind::ProviderCustomer),
                (Asn(20), Asn(30), RelKind::Peer),
            ],
        );
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.kind_between(Asn(10), Asn(20)), Some(NeighborKind::Customer));
        assert_eq!(g.kind_between(Asn(20), Asn(10)), Some(NeighborKind::Provider));
        assert_eq!(g.kind_between(Asn(20), Asn(30)), Some(NeighborKind::Peer));
        assert_eq!(g.kind_between(Asn(10), Asn(30)), None);
    }
}
