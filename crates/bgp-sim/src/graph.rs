//! The AS-level graph as seen by BGP at one instant.
//!
//! Business relationships come from the world; an adjacency is *usable*
//! only while at least one of its IP links is up. When a cable cut downs
//! every link between two ASes, the adjacency vanishes and routing must
//! find valley-free alternatives — that is the mechanism by which physical
//! failures become routing events.

use std::collections::{BTreeMap, BTreeSet};

use net_model::{Asn, SimTime};
use world::{RelKind, Scenario};

/// Relationship of a neighbour from the perspective of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NeighborKind {
    /// The neighbour pays us (we are their provider).
    Customer,
    /// Settlement-free peer.
    Peer,
    /// We pay the neighbour (they are our provider).
    Provider,
}

/// Immutable adjacency view of the AS graph at an instant.
#[derive(Debug, Clone)]
pub struct AsGraph {
    /// node → (neighbour → kind-from-node's-perspective)
    adj: BTreeMap<Asn, BTreeMap<Asn, NeighborKind>>,
}

impl AsGraph {
    /// Builds the graph for the scenario at time `t`.
    pub fn at_time(scenario: &Scenario, t: SimTime) -> AsGraph {
        let down = scenario.links_down_at(t);
        // Count live links per AS pair.
        let mut live: BTreeSet<(Asn, Asn)> = BTreeSet::new();
        for link in &scenario.world.links {
            if !down.contains(&link.id) {
                live.insert(link.as_pair());
            }
        }
        let mut adj: BTreeMap<Asn, BTreeMap<Asn, NeighborKind>> = BTreeMap::new();
        for a in &scenario.world.ases {
            adj.insert(a.asn, BTreeMap::new());
        }
        for rel in &scenario.world.relationships {
            let pair = if rel.a <= rel.b { (rel.a, rel.b) } else { (rel.b, rel.a) };
            if !live.contains(&pair) {
                continue;
            }
            match rel.kind {
                RelKind::ProviderCustomer => {
                    // rel.a is provider of rel.b
                    adj.get_mut(&rel.a).expect("known").insert(rel.b, NeighborKind::Customer);
                    adj.get_mut(&rel.b).expect("known").insert(rel.a, NeighborKind::Provider);
                }
                RelKind::Peer => {
                    adj.get_mut(&rel.a).expect("known").insert(rel.b, NeighborKind::Peer);
                    adj.get_mut(&rel.b).expect("known").insert(rel.a, NeighborKind::Peer);
                }
            }
        }
        AsGraph { adj }
    }

    /// All nodes, ascending.
    pub fn nodes(&self) -> impl Iterator<Item = Asn> + '_ {
        self.adj.keys().copied()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) adjacencies.
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(|n| n.len()).sum::<usize>() / 2
    }

    /// Neighbours of `asn` with their kinds (from `asn`'s perspective).
    pub fn neighbors(&self, asn: Asn) -> impl Iterator<Item = (Asn, NeighborKind)> + '_ {
        self.adj.get(&asn).into_iter().flat_map(|m| m.iter().map(|(&n, &k)| (n, k)))
    }

    /// The customers of `asn`.
    pub fn customers(&self, asn: Asn) -> Vec<Asn> {
        self.neighbors(asn).filter(|(_, k)| *k == NeighborKind::Customer).map(|(n, _)| n).collect()
    }

    /// The providers of `asn`.
    pub fn providers(&self, asn: Asn) -> Vec<Asn> {
        self.neighbors(asn).filter(|(_, k)| *k == NeighborKind::Provider).map(|(n, _)| n).collect()
    }

    /// The peers of `asn`.
    pub fn peers(&self, asn: Asn) -> Vec<Asn> {
        self.neighbors(asn).filter(|(_, k)| *k == NeighborKind::Peer).map(|(n, _)| n).collect()
    }

    /// Whether an adjacency exists.
    pub fn adjacent(&self, a: Asn, b: Asn) -> bool {
        self.adj.get(&a).is_some_and(|m| m.contains_key(&b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::SimDuration;
    use world::{generate, EventKind, WorldConfig};

    #[test]
    fn graph_reflects_world_relationships() {
        let world = generate(&WorldConfig::default());
        let scenario = Scenario::quiet(world, 10);
        let g = AsGraph::at_time(&scenario, scenario.now);
        assert_eq!(g.node_count(), scenario.world.ases.len());
        assert!(g.edge_count() > 100);
    }

    #[test]
    fn provider_and_customer_views_are_mirrored() {
        let world = generate(&WorldConfig::default());
        let scenario = Scenario::quiet(world, 10);
        let g = AsGraph::at_time(&scenario, scenario.now);
        for asn in g.nodes().collect::<Vec<_>>() {
            for cust in g.customers(asn) {
                assert!(g.providers(cust).contains(&asn));
            }
            for peer in g.peers(asn) {
                assert!(g.peers(peer).contains(&asn));
            }
        }
    }

    #[test]
    fn cable_cut_can_remove_adjacencies() {
        let world = generate(&WorldConfig::default());
        let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let cut_at = net_model::SimTime::EPOCH + SimDuration::days(5);
        let scenario =
            Scenario::quiet(world, 10).with_event(EventKind::CableCut { cable }, cut_at);
        let before = AsGraph::at_time(&scenario, cut_at - SimDuration::hours(1));
        let after = AsGraph::at_time(&scenario, cut_at + SimDuration::hours(1));
        assert!(after.edge_count() <= before.edge_count());
    }
}
