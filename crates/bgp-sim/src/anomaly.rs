//! BGP anomaly detection over update streams.
//!
//! Four detectors the case-study workflows use:
//!
//! * **update bursts** — bucket the stream, model the per-bucket count as
//!   roughly normal, flag buckets whose z-score exceeds a threshold. A
//!   cable cut produces a sharp, short burst of withdrawals and
//!   re-announcements; the forensic workflow (case study 4) correlates the
//!   burst time with the latency anomaly onset.
//! * **reachability losses** — `(peer, prefix)` pairs withdrawn and never
//!   re-announced within the stream, the signature of a hard partition.
//! * **MOAS conflicts** — prefixes observed with more than one origin AS
//!   (across a baseline RIB and the announcement stream), the signature
//!   of a prefix hijack.
//! * **valley violations** — announced AS paths that break the
//!   valley-free export rule against a reference topology, the signature
//!   of a route leak (with the pivot AS — the leaker candidate —
//!   attributed per violation).

use std::collections::{BTreeMap, BTreeSet};

use net_model::{Asn, Ipv4Net, SimTime, TimeWindow};
use serde::{Deserialize, Serialize};

use crate::graph::{AsGraph, NeighborKind};
use crate::rib::RibSnapshot;
use crate::updates::{BgpUpdate, UpdateKind};

/// A detected burst of update activity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateBurst {
    pub window: TimeWindow,
    pub count: usize,
    /// How many standard deviations above the stream mean.
    pub z_score: f64,
    /// Fraction of updates in the burst that are withdrawals.
    pub withdrawal_fraction: f64,
}

/// Buckets the stream over `window` into `buckets` bins and returns bins
/// whose count z-score is at least `z_threshold`.
///
/// With fewer than two non-empty buckets no baseline exists and the single
/// active bucket is reported with an infinite z-score — an event in an
/// otherwise silent stream is maximally anomalous.
pub fn detect_update_bursts(
    updates: &[BgpUpdate],
    window: TimeWindow,
    buckets: usize,
    z_threshold: f64,
) -> Vec<UpdateBurst> {
    assert!(buckets > 0);
    let bins = window.buckets(buckets);
    let mut counts = vec![0usize; bins.len()];
    let mut withdrawals = vec![0usize; bins.len()];
    for u in updates {
        if let Some(i) = bucket_index(&window, buckets, u.time) {
            counts[i] += 1;
            if u.is_withdraw() {
                withdrawals[i] += 1;
            }
        }
    }

    let n = counts.len() as f64;
    let mean = counts.iter().sum::<usize>() as f64 / n;
    let var = counts.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>() / n;
    let sd = var.sqrt();

    let mut out = Vec::new();
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let z = if sd > 0.0 {
            (c as f64 - mean) / sd
        } else {
            f64::INFINITY
        };
        if z >= z_threshold {
            out.push(UpdateBurst {
                window: bins[i],
                count: c,
                z_score: z,
                withdrawal_fraction: withdrawals[i] as f64 / c as f64,
            });
        }
    }
    out
}

/// `(peer, prefix)` pairs that were withdrawn and never re-announced later
/// in the stream. Returns them with the withdrawal time.
pub fn reachability_losses(updates: &[BgpUpdate]) -> Vec<(net_model::Asn, Ipv4Net, SimTime)> {
    use std::collections::BTreeMap;
    // Track the last update per (peer, prefix); stream is time-ordered.
    let mut last: BTreeMap<(net_model::Asn, Ipv4Net), (bool, SimTime)> = BTreeMap::new();
    for u in updates {
        let is_withdraw = matches!(u.kind, UpdateKind::Withdraw);
        last.insert((u.peer, u.prefix), (is_withdraw, u.time));
    }
    last.into_iter()
        .filter(|(_, (w, _))| *w)
        .map(|((peer, prefix), (_, t))| (peer, prefix, t))
        .collect()
}

/// A detected MOAS (multiple-origin AS) conflict: one prefix, several
/// origins — the capture footprint of a prefix hijack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoasConflict {
    pub prefix: Ipv4Net,
    /// Every origin observed for the prefix, ascending.
    pub origins: Vec<Asn>,
    /// When the stream first showed a second distinct origin (`None` when
    /// the conflict was already present in the baseline RIB).
    pub first_conflict: Option<SimTime>,
    /// Announcements of this prefix in the stream.
    pub announcements: usize,
}

/// Detects MOAS conflicts: prefixes whose observed origin set — origins
/// in the `baseline` RIB plus origins announced in `updates` — has more
/// than one member. Results are in ascending prefix order.
///
/// The baseline matters because a partial hijack moves only *some*
/// vantage points to the bogus origin: the victims' announcements carry
/// the hijacker while unaffected peers silently keep the legitimate
/// origin from the baseline, so the stream alone often shows one origin.
pub fn detect_moas_conflicts(
    updates: &[BgpUpdate],
    baseline: &RibSnapshot,
) -> Vec<MoasConflict> {
    struct Acc {
        origins: BTreeSet<Asn>,
        first_conflict: Option<SimTime>,
        announcements: usize,
        conflicted_in_baseline: bool,
    }
    let mut by_prefix: BTreeMap<Ipv4Net, Acc> = BTreeMap::new();
    for e in &baseline.entries {
        let acc = by_prefix.entry(e.prefix).or_insert(Acc {
            origins: BTreeSet::new(),
            first_conflict: None,
            announcements: 0,
            conflicted_in_baseline: false,
        });
        acc.origins.insert(e.origin());
        acc.conflicted_in_baseline = acc.origins.len() > 1;
    }
    for u in updates {
        let UpdateKind::Announce { as_path } = &u.kind else { continue };
        let Some(&origin) = as_path.last() else { continue };
        let acc = by_prefix.entry(u.prefix).or_insert(Acc {
            origins: BTreeSet::new(),
            first_conflict: None,
            announcements: 0,
            conflicted_in_baseline: false,
        });
        acc.announcements += 1;
        let grew = acc.origins.insert(origin);
        if grew && acc.origins.len() > 1 && acc.first_conflict.is_none() {
            acc.first_conflict = Some(u.time);
        }
    }
    by_prefix
        .into_iter()
        .filter(|(_, acc)| acc.origins.len() > 1)
        .map(|(prefix, acc)| MoasConflict {
            prefix,
            origins: acc.origins.into_iter().collect(),
            first_conflict: if acc.conflicted_in_baseline { None } else { acc.first_conflict },
            announcements: acc.announcements,
        })
        .collect()
}

/// An announced AS path that violates the valley-free export rule — the
/// capture footprint of a route leak.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValleyViolation {
    pub time: SimTime,
    pub peer: Asn,
    pub prefix: Ipv4Net,
    /// The violating path (prepending collapsed).
    pub as_path: Vec<Asn>,
    /// The AS at which the path first turns back up/sideways after going
    /// down — the leaker candidate — when the violation is a genuine
    /// valley (`None` when the path crosses a non-adjacency instead).
    pub pivot: Option<Asn>,
}

/// Detects announcements whose AS path is not valley-free against
/// `graph` (a reference topology — typically the scenario's quiet-start
/// graph, whose adjacency set is a superset of every later instant's).
/// Consecutive duplicate ASNs (path prepending, e.g. the simulator's
/// exploration transients) are collapsed before checking, since
/// prepending is legitimate. Results are in stream order.
pub fn detect_valley_violations(
    updates: &[BgpUpdate],
    graph: &AsGraph,
) -> Vec<ValleyViolation> {
    let mut out = Vec::new();
    for u in updates {
        let UpdateKind::Announce { as_path } = &u.kind else { continue };
        let mut path: Vec<Asn> = Vec::with_capacity(as_path.len());
        for &a in as_path {
            if path.last() != Some(&a) {
                path.push(a);
            }
        }
        if let Some(pivot) = valley_pivot(graph, &path) {
            out.push(ValleyViolation {
                time: u.time,
                peer: u.peer,
                prefix: u.prefix,
                as_path: path,
                pivot,
            });
        }
    }
    out
}

/// Where a path first violates the valley-free rule, walking from the
/// holder towards the origin: `Some(Some(asn))` names the AS after which
/// the path illegally turns up/sideways again (the leaker candidate),
/// `Some(None)` flags a non-adjacency step, `None` means the path is
/// clean. Mirrors [`crate::routing::is_valley_free`]'s phase machine.
fn valley_pivot(graph: &AsGraph, path: &[Asn]) -> Option<Option<Asn>> {
    #[derive(PartialEq)]
    enum Phase {
        Up,
        Side,
        Down,
    }
    let mut phase = Phase::Up;
    for w in path.windows(2) {
        let (u, v) = (w[0], w[1]);
        let kind = match graph.kind_between(u, v) {
            Some(k) => k,
            None => return Some(None),
        };
        match kind {
            NeighborKind::Provider => {
                if phase != Phase::Up {
                    return Some(Some(u));
                }
            }
            NeighborKind::Peer => {
                if phase != Phase::Up {
                    return Some(Some(u));
                }
                phase = Phase::Side;
            }
            NeighborKind::Customer => {
                phase = Phase::Down;
            }
        }
    }
    None
}

/// Counts updates per `(time bucket)` — a convenience series for plots and
/// temporal correlation.
pub fn update_rate_series(
    updates: &[BgpUpdate],
    window: TimeWindow,
    buckets: usize,
) -> Vec<(TimeWindow, usize)> {
    assert!(buckets > 0);
    let bins = window.buckets(buckets);
    let mut counts = vec![0usize; bins.len()];
    for u in updates {
        if let Some(i) = bucket_index(&window, buckets, u.time) {
            counts[i] += 1;
        }
    }
    bins.into_iter().zip(counts).collect()
}

/// The index of the bucket of `TimeWindow::buckets(n)` containing `t`,
/// computed arithmetically — O(1) per update instead of the former
/// O(buckets) linear scan. Mirrors the bucket geometry exactly: buckets
/// are `total / n` seconds wide (integer division) and the last bucket
/// absorbs the remainder; a zero-width bucket (window shorter than `n`
/// seconds) can contain nothing, so everything lands in the final
/// remainder bucket.
fn bucket_index(window: &TimeWindow, n: usize, t: SimTime) -> Option<usize> {
    if !window.contains(t) {
        return None;
    }
    let step = window.duration().as_seconds() / n as i64;
    if step == 0 {
        return Some(n - 1);
    }
    let idx = ((t.0 - window.start.0) / step) as usize;
    Some(idx.min(n - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::{Asn, SimDuration};
    use world::{generate, EventKind, Scenario, WorldConfig};

    fn cut_scenario_updates() -> (SimTime, TimeWindow, Vec<BgpUpdate>) {
        let world = generate(&WorldConfig::default());
        let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let cut = SimTime::EPOCH + SimDuration::days(5);
        let s = Scenario::quiet(world, 10).with_event(EventKind::CableCut { cable }, cut);
        let peers: Vec<Asn> = s.world.ases.iter().take(40).map(|a| a.asn).collect();
        let ups = crate::updates::derive_updates(&s, &peers);
        (cut, s.horizon, ups)
    }

    #[test]
    fn burst_detected_at_cut_time() {
        let (cut, horizon, ups) = cut_scenario_updates();
        let bursts = detect_update_bursts(&ups, horizon, 240, 3.0);
        assert!(!bursts.is_empty(), "cable cut must produce a burst");
        let hit = bursts.iter().any(|b| b.window.contains(cut) || b.window.start >= cut);
        assert!(hit, "burst should align with the cut");
    }

    #[test]
    fn no_burst_in_quiet_stream() {
        let horizon = TimeWindow::new(SimTime(0), SimTime(86_400));
        let bursts = detect_update_bursts(&[], horizon, 24, 2.5);
        assert!(bursts.is_empty());
    }

    #[test]
    fn rate_series_counts_everything_inside_window() {
        let (_, horizon, ups) = cut_scenario_updates();
        let series = update_rate_series(&ups, horizon, 100);
        let total: usize = series.iter().map(|(_, c)| c).sum();
        assert_eq!(total, ups.len());
    }

    #[test]
    fn bucket_index_matches_linear_scan() {
        // Awkward divisions: remainders, windows shorter than the bucket
        // count, single buckets.
        for (start, end, n) in [
            (0i64, 100i64, 7usize),
            (13, 113, 9),
            (0, 5, 24),
            (-50, 77, 3),
            (0, 86_400, 240),
            (10, 11, 4),
            (0, 60, 1),
        ] {
            let w = TimeWindow::new(SimTime(start), SimTime(end));
            let bins = w.buckets(n);
            for t in (start - 2)..(end + 2) {
                let linear = bins.iter().position(|b| b.contains(SimTime(t)));
                assert_eq!(
                    bucket_index(&w, n, SimTime(t)),
                    linear,
                    "window [{start},{end}) n={n} t={t}"
                );
            }
        }
    }

    fn ann(t: i64, peer: u32, prefix: Ipv4Net, path: &[u32]) -> BgpUpdate {
        BgpUpdate {
            time: SimTime(t),
            peer: Asn(peer),
            prefix,
            kind: UpdateKind::Announce { as_path: path.iter().map(|&a| Asn(a)).collect() },
        }
    }

    #[test]
    fn moas_conflict_needs_baseline_awareness() {
        use crate::rib::{RibEntry, RibSnapshot};
        let pfx = Ipv4Net::parse("10.0.0.0/20").unwrap();
        let other = Ipv4Net::parse("10.16.0.0/20").unwrap();
        // Baseline: two peers hold the prefix from legitimate origin 30.
        let baseline = RibSnapshot {
            at: SimTime(0),
            entries: vec![
                RibEntry { peer: Asn(1), prefix: pfx, as_path: vec![Asn(1), Asn(30)] },
                RibEntry { peer: Asn(2), prefix: pfx, as_path: vec![Asn(2), Asn(30)] },
                RibEntry { peer: Asn(1), prefix: other, as_path: vec![Asn(1), Asn(40)] },
            ],
        };
        // Stream: only peer 1 moves to the hijacker (origin 99) — the
        // stream alone never shows origin 30.
        let stream = vec![ann(500, 1, pfx, &[1, 99])];
        let conflicts = detect_moas_conflicts(&stream, &baseline);
        assert_eq!(conflicts.len(), 1);
        let c = &conflicts[0];
        assert_eq!(c.prefix, pfx);
        assert_eq!(c.origins, vec![Asn(30), Asn(99)]);
        assert_eq!(c.first_conflict, Some(SimTime(500)));
        assert_eq!(c.announcements, 1);

        // Without the hijack announcement: no conflict anywhere.
        assert!(detect_moas_conflicts(&[], &baseline).is_empty());
    }

    #[test]
    fn moas_ignores_withdrawals_and_single_origin_churn() {
        use crate::rib::RibSnapshot;
        let pfx = Ipv4Net::parse("10.0.0.0/20").unwrap();
        let empty = RibSnapshot { at: SimTime(0), entries: vec![] };
        let stream = vec![
            ann(10, 1, pfx, &[1, 30]),
            BgpUpdate {
                time: SimTime(20),
                peer: Asn(1),
                prefix: pfx,
                kind: UpdateKind::Withdraw,
            },
            ann(30, 1, pfx, &[1, 5, 30]),
        ];
        assert!(detect_moas_conflicts(&stream, &empty).is_empty());
    }

    #[test]
    fn valley_violation_detected_with_pivot_and_prepending_ignored() {
        use world::RelKind;
        // 10 ── provider of ── 20, 30; 20 ── peer ── 30.
        let g = crate::graph::AsGraph::from_relationships(
            vec![Asn(10), Asn(20), Asn(30)],
            vec![
                (Asn(10), Asn(20), RelKind::ProviderCustomer),
                (Asn(10), Asn(30), RelKind::ProviderCustomer),
                (Asn(20), Asn(30), RelKind::Peer),
            ],
        );
        let pfx = Ipv4Net::parse("10.0.0.0/20").unwrap();
        // 20 → 10 (up) → 30 (down): clean.
        let clean = ann(0, 20, pfx, &[20, 10, 30]);
        // Prepended head (transient texture): still clean.
        let prepended = ann(1, 20, pfx, &[20, 20, 10, 30]);
        // 10 → 20 (down) → 30 (peer, sideways after down): the leak shape —
        // 20 is the pivot (the leaker candidate).
        let leaked = ann(2, 10, pfx, &[10, 20, 30]);
        // A step with no adjacency at all.
        let bogus = ann(3, 20, pfx, &[20, 99, 30]);

        let violations = detect_valley_violations(&[clean, prepended, leaked, bogus], &g);
        assert_eq!(violations.len(), 2);
        assert_eq!(violations[0].as_path, vec![Asn(10), Asn(20), Asn(30)]);
        assert_eq!(violations[0].pivot, Some(Asn(20)));
        assert_eq!(violations[1].pivot, None, "non-adjacency has no pivot");
    }

    #[test]
    fn reachability_loss_requires_no_reannounce() {
        use crate::updates::UpdateKind;
        let pfx = Ipv4Net::parse("10.0.0.0/20").unwrap();
        let peer = Asn(42);
        let w = |t: i64| BgpUpdate { time: SimTime(t), peer, prefix: pfx, kind: UpdateKind::Withdraw };
        let a = |t: i64| BgpUpdate {
            time: SimTime(t),
            peer,
            prefix: pfx,
            kind: UpdateKind::Announce { as_path: vec![peer] },
        };
        // Withdrawn then re-announced: not a loss.
        assert!(reachability_losses(&[w(10), a(20)]).is_empty());
        // Withdrawn last: a loss.
        let losses = reachability_losses(&[a(5), w(30)]);
        assert_eq!(losses, vec![(peer, pfx, SimTime(30))]);
    }
}
