//! BGP anomaly detection over update streams.
//!
//! Two detectors the case-study workflows use:
//!
//! * **update bursts** — bucket the stream, model the per-bucket count as
//!   roughly normal, flag buckets whose z-score exceeds a threshold. A
//!   cable cut produces a sharp, short burst of withdrawals and
//!   re-announcements; the forensic workflow (case study 4) correlates the
//!   burst time with the latency anomaly onset.
//! * **reachability losses** — `(peer, prefix)` pairs withdrawn and never
//!   re-announced within the stream, the signature of a hard partition.

use net_model::{Ipv4Net, SimTime, TimeWindow};
use serde::{Deserialize, Serialize};

use crate::updates::{BgpUpdate, UpdateKind};

/// A detected burst of update activity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateBurst {
    pub window: TimeWindow,
    pub count: usize,
    /// How many standard deviations above the stream mean.
    pub z_score: f64,
    /// Fraction of updates in the burst that are withdrawals.
    pub withdrawal_fraction: f64,
}

/// Buckets the stream over `window` into `buckets` bins and returns bins
/// whose count z-score is at least `z_threshold`.
///
/// With fewer than two non-empty buckets no baseline exists and the single
/// active bucket is reported with an infinite z-score — an event in an
/// otherwise silent stream is maximally anomalous.
pub fn detect_update_bursts(
    updates: &[BgpUpdate],
    window: TimeWindow,
    buckets: usize,
    z_threshold: f64,
) -> Vec<UpdateBurst> {
    assert!(buckets > 0);
    let bins = window.buckets(buckets);
    let mut counts = vec![0usize; bins.len()];
    let mut withdrawals = vec![0usize; bins.len()];
    for u in updates {
        if let Some(i) = bins.iter().position(|b| b.contains(u.time)) {
            counts[i] += 1;
            if u.is_withdraw() {
                withdrawals[i] += 1;
            }
        }
    }

    let n = counts.len() as f64;
    let mean = counts.iter().sum::<usize>() as f64 / n;
    let var = counts.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>() / n;
    let sd = var.sqrt();

    let mut out = Vec::new();
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let z = if sd > 0.0 {
            (c as f64 - mean) / sd
        } else {
            f64::INFINITY
        };
        if z >= z_threshold {
            out.push(UpdateBurst {
                window: bins[i],
                count: c,
                z_score: z,
                withdrawal_fraction: withdrawals[i] as f64 / c as f64,
            });
        }
    }
    out
}

/// `(peer, prefix)` pairs that were withdrawn and never re-announced later
/// in the stream. Returns them with the withdrawal time.
pub fn reachability_losses(updates: &[BgpUpdate]) -> Vec<(net_model::Asn, Ipv4Net, SimTime)> {
    use std::collections::BTreeMap;
    // Track the last update per (peer, prefix); stream is time-ordered.
    let mut last: BTreeMap<(net_model::Asn, Ipv4Net), (bool, SimTime)> = BTreeMap::new();
    for u in updates {
        let is_withdraw = matches!(u.kind, UpdateKind::Withdraw);
        last.insert((u.peer, u.prefix), (is_withdraw, u.time));
    }
    last.into_iter()
        .filter(|(_, (w, _))| *w)
        .map(|((peer, prefix), (_, t))| (peer, prefix, t))
        .collect()
}

/// Counts updates per `(time bucket)` — a convenience series for plots and
/// temporal correlation.
pub fn update_rate_series(
    updates: &[BgpUpdate],
    window: TimeWindow,
    buckets: usize,
) -> Vec<(TimeWindow, usize)> {
    let bins = window.buckets(buckets);
    let mut counts = vec![0usize; bins.len()];
    for u in updates {
        if let Some(i) = bins.iter().position(|b| b.contains(u.time)) {
            counts[i] += 1;
        }
    }
    bins.into_iter().zip(counts).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::{Asn, SimDuration};
    use world::{generate, EventKind, Scenario, WorldConfig};

    fn cut_scenario_updates() -> (SimTime, TimeWindow, Vec<BgpUpdate>) {
        let world = generate(&WorldConfig::default());
        let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let cut = SimTime::EPOCH + SimDuration::days(5);
        let s = Scenario::quiet(world, 10).with_event(EventKind::CableCut { cable }, cut);
        let peers: Vec<Asn> = s.world.ases.iter().take(40).map(|a| a.asn).collect();
        let ups = crate::updates::derive_updates(&s, &peers);
        (cut, s.horizon, ups)
    }

    #[test]
    fn burst_detected_at_cut_time() {
        let (cut, horizon, ups) = cut_scenario_updates();
        let bursts = detect_update_bursts(&ups, horizon, 240, 3.0);
        assert!(!bursts.is_empty(), "cable cut must produce a burst");
        let hit = bursts.iter().any(|b| b.window.contains(cut) || b.window.start >= cut);
        assert!(hit, "burst should align with the cut");
    }

    #[test]
    fn no_burst_in_quiet_stream() {
        let horizon = TimeWindow::new(SimTime(0), SimTime(86_400));
        let bursts = detect_update_bursts(&[], horizon, 24, 2.5);
        assert!(bursts.is_empty());
    }

    #[test]
    fn rate_series_counts_everything_inside_window() {
        let (_, horizon, ups) = cut_scenario_updates();
        let series = update_rate_series(&ups, horizon, 100);
        let total: usize = series.iter().map(|(_, c)| c).sum();
        assert_eq!(total, ups.len());
    }

    #[test]
    fn reachability_loss_requires_no_reannounce() {
        use crate::updates::UpdateKind;
        let pfx = Ipv4Net::parse("10.0.0.0/20").unwrap();
        let peer = Asn(42);
        let w = |t: i64| BgpUpdate { time: SimTime(t), peer, prefix: pfx, kind: UpdateKind::Withdraw };
        let a = |t: i64| BgpUpdate {
            time: SimTime(t),
            peer,
            prefix: pfx,
            kind: UpdateKind::Announce { as_path: vec![peer] },
        };
        // Withdrawn then re-announced: not a loss.
        assert!(reachability_losses(&[w(10), a(20)]).is_empty());
        // Withdrawn last: a loss.
        let losses = reachability_losses(&[a(5), w(30)]);
        assert_eq!(losses, vec![(peer, pfx, SimTime(30))]);
    }
}
