//! MRT-flavoured binary encoding of RIB dumps and update streams.
//!
//! Real pipelines read RouteViews/RIS files in the MRT container format
//! (RFC 6396). This module implements a compact dialect with the same
//! record discipline — `(timestamp, type, length, payload)` frames — so
//! that downstream tooling exercises genuine parse/validate code paths
//! instead of passing Rust structs around. The dialect is not wire-
//! compatible with RFC 6396 (we have no AFI/SAFI or BGP attribute TLVs to
//! carry) but preserves the structural properties that matter for the
//! reproduction: length-prefixed framing, per-record timestamps, and
//! distinct RIB/update record types.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! record  := u64 timestamp | u16 type | u32 length | payload
//! type 1  := RIB entry:    u32 peer | u32 net | u8 len | u16 n | n × u32 asn
//! type 2  := announce:     u32 peer | u32 net | u8 len | u16 n | n × u32 asn
//! type 3  := withdraw:     u32 peer | u32 net | u8 len
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use net_model::{Asn, Ipv4Addr, Ipv4Net, SimTime};

use crate::rib::{RibEntry, RibSnapshot};
use crate::updates::{BgpUpdate, UpdateKind};

/// Record type codes.
const TYPE_RIB: u16 = 1;
const TYPE_ANNOUNCE: u16 = 2;
const TYPE_WITHDRAW: u16 = 3;

/// Errors raised by the reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrtError {
    /// Input ended mid-record.
    Truncated,
    /// Unknown record type code.
    UnknownType(u16),
    /// Payload length disagrees with content.
    BadLength,
    /// Prefix failed validation.
    BadPrefix,
}

impl std::fmt::Display for MrtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrtError::Truncated => write!(f, "truncated MRT record"),
            MrtError::UnknownType(t) => write!(f, "unknown MRT record type {t}"),
            MrtError::BadLength => write!(f, "MRT record length mismatch"),
            MrtError::BadPrefix => write!(f, "invalid prefix in MRT record"),
        }
    }
}

impl std::error::Error for MrtError {}

/// A decoded record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrtRecord {
    Rib { time: SimTime, entry: RibEntry },
    Update(BgpUpdate),
}

impl MrtRecord {
    pub fn time(&self) -> SimTime {
        match self {
            MrtRecord::Rib { time, .. } => *time,
            MrtRecord::Update(u) => u.time,
        }
    }
}

/// Frame header size: u64 timestamp + u16 type + u32 length.
const HEADER_LEN: usize = 14;
/// Payload prefix common to every record: u32 peer + u32 net + u8 len.
const PEER_PREFIX_LEN: usize = 9;

fn put_path(buf: &mut BytesMut, path: &[Asn]) {
    buf.put_u16(path.len() as u16);
    for a in path {
        buf.put_u32(a.0);
    }
}

fn put_prefix(buf: &mut BytesMut, p: &Ipv4Net) {
    buf.put_u32(p.network().0);
    buf.put_u8(p.len());
}

/// Encoded size of a path field: u16 count + 4 bytes per ASN.
fn path_len(path: &[Asn]) -> usize {
    2 + 4 * path.len()
}

/// Writes one record header + peer/prefix prefix straight into `out` —
/// payload lengths are computed upfront, so encoding appends to a single
/// buffer with no per-record staging allocation.
fn frame_header(out: &mut BytesMut, time: SimTime, ty: u16, payload_len: usize, peer: Asn, prefix: &Ipv4Net) {
    out.put_u64(time.0 as u64);
    out.put_u16(ty);
    out.put_u32(payload_len as u32);
    out.put_u32(peer.0);
    put_prefix(out, prefix);
}

/// Encodes a RIB snapshot into one MRT-flavoured blob.
pub fn encode_rib(rib: &RibSnapshot) -> Bytes {
    let total: usize = rib
        .entries
        .iter()
        .map(|e| HEADER_LEN + PEER_PREFIX_LEN + path_len(&e.as_path))
        .sum();
    let mut out = BytesMut::with_capacity(total);
    for e in &rib.entries {
        let payload_len = PEER_PREFIX_LEN + path_len(&e.as_path);
        frame_header(&mut out, rib.at, TYPE_RIB, payload_len, e.peer, &e.prefix);
        put_path(&mut out, &e.as_path);
    }
    out.freeze()
}

/// Encodes an update stream into one MRT-flavoured blob.
pub fn encode_updates(updates: &[BgpUpdate]) -> Bytes {
    let total: usize = updates
        .iter()
        .map(|u| {
            HEADER_LEN
                + PEER_PREFIX_LEN
                + match &u.kind {
                    UpdateKind::Announce { as_path } => path_len(as_path),
                    UpdateKind::Withdraw => 0,
                }
        })
        .sum();
    let mut out = BytesMut::with_capacity(total);
    for u in updates {
        match &u.kind {
            UpdateKind::Announce { as_path } => {
                let payload_len = PEER_PREFIX_LEN + path_len(as_path);
                frame_header(&mut out, u.time, TYPE_ANNOUNCE, payload_len, u.peer, &u.prefix);
                put_path(&mut out, as_path);
            }
            UpdateKind::Withdraw => {
                frame_header(&mut out, u.time, TYPE_WITHDRAW, PEER_PREFIX_LEN, u.peer, &u.prefix);
            }
        }
    }
    out.freeze()
}

/// Streaming reader over an encoded blob — the BGPStream-like interface.
#[derive(Debug)]
pub struct MrtReader {
    buf: Bytes,
}

impl MrtReader {
    pub fn new(buf: Bytes) -> Self {
        MrtReader { buf }
    }

    fn read_path(payload: &mut Bytes) -> Result<Vec<Asn>, MrtError> {
        if payload.remaining() < 2 {
            return Err(MrtError::Truncated);
        }
        let n = payload.get_u16() as usize;
        if payload.remaining() < n * 4 {
            return Err(MrtError::Truncated);
        }
        Ok((0..n).map(|_| Asn(payload.get_u32())).collect())
    }

    fn read_prefix(payload: &mut Bytes) -> Result<Ipv4Net, MrtError> {
        if payload.remaining() < 5 {
            return Err(MrtError::Truncated);
        }
        let net = payload.get_u32();
        let len = payload.get_u8();
        Ipv4Net::new(Ipv4Addr(net), len).map_err(|_| MrtError::BadPrefix)
    }
}

impl Iterator for MrtReader {
    type Item = Result<MrtRecord, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.buf.remaining() == 0 {
            return None;
        }
        if self.buf.remaining() < 14 {
            self.buf.advance(self.buf.remaining());
            return Some(Err(MrtError::Truncated));
        }
        let time = SimTime(self.buf.get_u64() as i64);
        let ty = self.buf.get_u16();
        let len = self.buf.get_u32() as usize;
        if self.buf.remaining() < len {
            self.buf.advance(self.buf.remaining());
            return Some(Err(MrtError::Truncated));
        }
        let mut payload = self.buf.split_to(len);

        let result = (|| {
            if payload.remaining() < 4 {
                return Err(MrtError::Truncated);
            }
            let peer = Asn(payload.get_u32());
            let prefix = Self::read_prefix(&mut payload)?;
            let rec = match ty {
                TYPE_RIB => {
                    let as_path = Self::read_path(&mut payload)?;
                    MrtRecord::Rib { time, entry: RibEntry { peer, prefix, as_path } }
                }
                TYPE_ANNOUNCE => {
                    let as_path = Self::read_path(&mut payload)?;
                    MrtRecord::Update(BgpUpdate {
                        time,
                        peer,
                        prefix,
                        kind: UpdateKind::Announce { as_path },
                    })
                }
                TYPE_WITHDRAW => {
                    MrtRecord::Update(BgpUpdate { time, peer, prefix, kind: UpdateKind::Withdraw })
                }
                other => return Err(MrtError::UnknownType(other)),
            };
            if payload.remaining() != 0 {
                return Err(MrtError::BadLength);
            }
            Ok(rec)
        })();
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::SimDuration;
    use world::{generate, EventKind, Scenario, WorldConfig};

    fn sample() -> (RibSnapshot, Vec<BgpUpdate>) {
        let world = generate(&WorldConfig::default());
        let cable = world.cable_by_name("AAE-1").unwrap().id;
        let cut = SimTime::EPOCH + SimDuration::days(2);
        let s = Scenario::quiet(world, 5).with_event(EventKind::CableCut { cable }, cut);
        let peers: Vec<Asn> = s.world.ases.iter().take(40).map(|a| a.asn).collect();
        let rib = RibSnapshot::capture(&s, &peers, SimTime::EPOCH);
        let ups = crate::updates::derive_updates(&s, &peers);
        (rib, ups)
    }

    #[test]
    fn rib_roundtrip() {
        let (rib, _) = sample();
        let blob = encode_rib(&rib);
        let decoded: Vec<RibEntry> = MrtReader::new(blob)
            .map(|r| match r.unwrap() {
                MrtRecord::Rib { entry, .. } => entry,
                _ => panic!("expected RIB records"),
            })
            .collect();
        assert_eq!(decoded, rib.entries);
    }

    #[test]
    fn updates_roundtrip() {
        let (_, ups) = sample();
        assert!(!ups.is_empty());
        let blob = encode_updates(&ups);
        let decoded: Vec<BgpUpdate> = MrtReader::new(blob)
            .map(|r| match r.unwrap() {
                MrtRecord::Update(u) => u,
                _ => panic!("expected update records"),
            })
            .collect();
        assert_eq!(decoded, ups);
    }

    #[test]
    fn truncated_input_reports_error_once() {
        let (rib, _) = sample();
        let blob = encode_rib(&rib);
        let cut = blob.slice(0..blob.len() - 3);
        let results: Vec<_> = MrtReader::new(cut).collect();
        assert!(matches!(results.last(), Some(Err(MrtError::Truncated))));
        // All records before the truncation decode fine.
        assert!(results[..results.len() - 1].iter().all(|r| r.is_ok()));
    }

    #[test]
    fn unknown_type_is_reported() {
        let mut buf = BytesMut::new();
        buf.put_u64(0);
        buf.put_u16(99);
        buf.put_u32(9);
        buf.put_u32(1); // peer
        buf.put_u32(0); // net
        buf.put_u8(24); // len
        let mut rd = MrtReader::new(buf.freeze());
        assert_eq!(rd.next(), Some(Err(MrtError::UnknownType(99))));
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(MrtReader::new(Bytes::new()).next().is_none());
    }
}
