//! # bgp-sim — the BGP measurement substrate
//!
//! Reproduces the slice of the BGP ecosystem the paper's workflows consume:
//! RouteViews/RIS-style collectors ([6, 7] in the paper) exposed through a
//! BGPStream-like reader API ([21]).
//!
//! * [`graph`] — the AS-level graph induced by a scenario at an instant
//!   (adjacencies disappear while all their IP links are down);
//! * [`routing`] — Gao–Rexford valley-free path computation with the
//!   standard customer > peer > provider preference;
//! * [`rib`] — RIB snapshots from a set of collector vantage points;
//! * [`updates`] — update streams derived by diffing RIBs across each
//!   scenario event, with deterministic convergence jitter and path
//!   exploration transients;
//! * [`mrt`] — a compact MRT-flavoured binary encoding (over `bytes`)
//!   with an iterator-based reader, so downstream tools parse dumps the
//!   way real pipelines parse RouteViews files;
//! * [`anomaly`] — update-burst and reachability-loss detectors.
//!
//! Everything is a pure function of the scenario; there is no hidden state.

pub mod anomaly;
pub mod graph;
pub mod mrt;
pub mod rib;
pub mod routing;
pub mod updates;

pub use anomaly::{
    detect_moas_conflicts, detect_update_bursts, detect_valley_violations,
    reachability_losses, MoasConflict, UpdateBurst, ValleyViolation,
};
pub use graph::AsGraph;
pub use rib::{RibEntry, RibSnapshot};
pub use routing::{PolicyOverrides, Route, RouteKind, RoutingTable};
pub use updates::{BgpUpdate, UpdateKind};

use net_model::SimTime;
use world::Scenario;

/// Facade over the substrate: collectors, RIBs, updates for one scenario.
#[derive(Debug)]
pub struct BgpSimulator<'a> {
    scenario: &'a Scenario,
    collectors: Vec<net_model::Asn>,
}

impl<'a> BgpSimulator<'a> {
    /// Builds a simulator with the default collector deployment: every
    /// tier-1 plus every national transit AS peers with "the collector",
    /// mirroring RouteViews' full-feed peer mix.
    pub fn new(scenario: &'a Scenario) -> Self {
        let collectors = scenario
            .world
            .ases
            .iter()
            .filter(|a| matches!(a.tier, world::AsTier::Tier1 | world::AsTier::Transit))
            .map(|a| a.asn)
            .collect();
        BgpSimulator { scenario, collectors }
    }

    /// The scenario under measurement.
    pub fn scenario(&self) -> &Scenario {
        self.scenario
    }

    /// Vantage-point ASNs feeding the collector.
    pub fn collectors(&self) -> &[net_model::Asn] {
        &self.collectors
    }

    /// AS graph as of `t` (adjacencies with all links down are removed).
    pub fn graph_at(&self, t: SimTime) -> AsGraph {
        AsGraph::at_time(self.scenario, t)
    }

    /// Full routing state as of `t`.
    pub fn routing_at(&self, t: SimTime) -> RoutingTable {
        RoutingTable::compute(&self.graph_at(t), &self.scenario.world)
    }

    /// RIB snapshot (all collector peers) as of `t`.
    pub fn rib_at(&self, t: SimTime) -> RibSnapshot {
        RibSnapshot::capture(self.scenario, &self.collectors, t)
    }

    /// Update stream across the whole horizon.
    pub fn updates(&self) -> Vec<BgpUpdate> {
        updates::derive_updates(self.scenario, &self.collectors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::SimDuration;
    use world::{generate, EventKind, Scenario, WorldConfig};

    #[test]
    fn simulator_end_to_end_on_cable_cut() {
        let world = generate(&WorldConfig::default());
        let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let cut_at = net_model::SimTime::EPOCH + SimDuration::days(5);
        let scenario =
            Scenario::quiet(world, 10).with_event(EventKind::CableCut { cable }, cut_at);
        let sim = BgpSimulator::new(&scenario);

        let before = sim.rib_at(cut_at - SimDuration::hours(1));
        let after = sim.rib_at(cut_at + SimDuration::hours(1));
        assert!(!before.entries.is_empty());
        // The cut must change at least one best path somewhere.
        assert_ne!(before.entries, after.entries);

        let updates = sim.updates();
        assert!(!updates.is_empty(), "a cable cut must generate updates");
        assert!(updates.iter().all(|u| u.time >= cut_at));
    }
}
