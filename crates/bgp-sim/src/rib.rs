//! RIB snapshots: what a route collector sees at an instant.
//!
//! A [`RibSnapshot`] is the set of best routes from every collector peer to
//! every announced prefix — the synthetic analogue of a RouteViews
//! `bview`/RIB dump file.

use std::collections::BTreeMap;

use net_model::{Asn, Ipv4Net, SimTime};
use serde::{Deserialize, Serialize};
use world::{Scenario, World};

use crate::graph::AsGraph;
use crate::routing::RoutingTable;

/// One RIB entry: `peer` reaches `prefix` via `as_path`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibEntry {
    pub peer: Asn,
    pub prefix: Ipv4Net,
    /// AS path from peer to origin (peer first, origin last).
    pub as_path: Vec<Asn>,
}

impl RibEntry {
    /// The origin AS (last path element).
    pub fn origin(&self) -> Asn {
        *self.as_path.last().expect("paths are non-empty")
    }
}

/// A full collector snapshot at `at`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RibSnapshot {
    pub at: SimTime,
    /// Entries in canonical (peer, prefix) order.
    pub entries: Vec<RibEntry>,
}

impl RibSnapshot {
    /// Captures the snapshot for the given collector peers at `t`.
    ///
    /// Many prefixes share an origin AS, so the best path per
    /// `(peer, origin)` pair is materialized from the routing table once
    /// and reused for every prefix that origin announces.
    pub fn capture(scenario: &Scenario, peers: &[Asn], t: SimTime) -> RibSnapshot {
        let graph = AsGraph::at_time(scenario, t);
        Self::capture_from_graph(&scenario.world, &graph, peers, t)
    }

    /// Captures the snapshot for a pre-built AS graph. Routing is a pure
    /// function of the topology, so callers diffing many instants (e.g.
    /// `derive_updates`) can compare graphs first and skip captures
    /// entirely when connectivity did not change.
    pub fn capture_from_graph(
        world: &World,
        graph: &AsGraph,
        peers: &[Asn],
        t: SimTime,
    ) -> RibSnapshot {
        let routing = RoutingTable::compute(graph, world);
        let mut entries = Vec::new();
        let mut paths: BTreeMap<Asn, Option<Vec<Asn>>> = BTreeMap::new();
        for peer in peers {
            paths.clear();
            for pfx in &world.prefixes {
                let path = paths
                    .entry(pfx.origin)
                    .or_insert_with(|| routing.route(*peer, pfx.origin).map(|r| r.as_path));
                if let Some(path) = path {
                    entries.push(RibEntry {
                        peer: *peer,
                        prefix: pfx.net,
                        as_path: path.clone(),
                    });
                }
            }
        }
        entries.sort_by_key(|a| (a.peer, a.prefix));
        RibSnapshot { at: t, entries }
    }

    /// Entries of one peer.
    pub fn for_peer(&self, peer: Asn) -> impl Iterator<Item = &RibEntry> + '_ {
        self.entries.iter().filter(move |e| e.peer == peer)
    }

    /// Index by (peer, prefix) for diffing.
    pub fn index(&self) -> BTreeMap<(Asn, Ipv4Net), &RibEntry> {
        self.entries.iter().map(|e| ((e.peer, e.prefix), e)).collect()
    }

    /// Fraction of (peer, prefix) pairs with a route, relative to the full
    /// cross product — a reachability health metric.
    pub fn coverage(&self, peers: usize, prefixes: usize) -> f64 {
        if peers == 0 || prefixes == 0 {
            return 0.0;
        }
        self.entries.len() as f64 / (peers * prefixes) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::SimDuration;
    use world::{generate, EventKind, WorldConfig};

    fn scenario_with_cut() -> (Scenario, net_model::CableId, SimTime) {
        let world = generate(&WorldConfig::default());
        let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let cut = SimTime::EPOCH + SimDuration::days(5);
        let s = Scenario::quiet(world, 10).with_event(EventKind::CableCut { cable }, cut);
        (s, cable, cut)
    }

    #[test]
    fn snapshot_is_canonical_and_covers_most_pairs() {
        let (s, _, _) = scenario_with_cut();
        let peers: Vec<Asn> = s.world.ases.iter().take(10).map(|a| a.asn).collect();
        let rib = RibSnapshot::capture(&s, &peers, SimTime::EPOCH);
        for w in rib.entries.windows(2) {
            assert!((w[0].peer, w[0].prefix) < (w[1].peer, w[1].prefix));
        }
        let cov = rib.coverage(peers.len(), s.world.prefixes.len());
        assert!(cov > 0.9, "coverage {cov}");
    }

    #[test]
    fn entries_terminate_at_true_origin() {
        let (s, _, _) = scenario_with_cut();
        let peers = vec![s.world.ases[0].asn];
        let rib = RibSnapshot::capture(&s, &peers, SimTime::EPOCH);
        for e in &rib.entries {
            let pfx = s.world.prefixes.iter().find(|p| p.net == e.prefix).unwrap();
            assert_eq!(e.origin(), pfx.origin);
        }
    }

    #[test]
    fn cut_changes_some_paths() {
        let (s, _, cut) = scenario_with_cut();
        let peers: Vec<Asn> = s.world.ases.iter().map(|a| a.asn).take(30).collect();
        let before = RibSnapshot::capture(&s, &peers, cut - SimDuration::hours(1));
        let after = RibSnapshot::capture(&s, &peers, cut + SimDuration::hours(1));
        let bi = before.index();
        let changed = after
            .entries
            .iter()
            .filter(|e| bi.get(&(e.peer, e.prefix)).is_none_or(|b| b.as_path != e.as_path))
            .count();
        assert!(changed > 0, "a major cable cut must move some best paths");
    }
}
