//! RIB snapshots: what a route collector sees at an instant.
//!
//! A [`RibSnapshot`] is the set of best routes from every collector peer to
//! every announced prefix — the synthetic analogue of a RouteViews
//! `bview`/RIB dump file.
//!
//! Control-plane incidents surface here: an active prefix hijack makes the
//! victim prefix a **MOAS** prefix (two candidate origins), and each
//! vantage point picks whichever origin its route selection actually
//! prefers — the classic partial-hijack capture footprint. Active route
//! leaks plumb into the routing computation itself as
//! [`crate::routing::PolicyOverrides`], so leaked (valley-violating,
//! inflated) paths appear verbatim in the snapshot entries.

use std::collections::BTreeMap;

use net_model::{Asn, Ipv4Net, SimTime};
use serde::{Deserialize, Serialize};
use world::{ControlPlaneState, Scenario, World};

use crate::graph::AsGraph;
use crate::routing::RoutingTable;

/// One RIB entry: `peer` reaches `prefix` via `as_path`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibEntry {
    pub peer: Asn,
    pub prefix: Ipv4Net,
    /// AS path from peer to origin (peer first, origin last).
    pub as_path: Vec<Asn>,
}

impl RibEntry {
    /// The origin AS (last path element).
    pub fn origin(&self) -> Asn {
        *self.as_path.last().expect("paths are non-empty")
    }
}

/// A full collector snapshot at `at`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RibSnapshot {
    pub at: SimTime,
    /// Entries in canonical (peer, prefix) order.
    pub entries: Vec<RibEntry>,
}

impl RibSnapshot {
    /// Captures the snapshot for the given collector peers at `t`,
    /// including whatever control-plane incidents the scenario has active
    /// at that instant.
    ///
    /// Many prefixes share an origin AS, so the best path per
    /// `(peer, origin)` pair is materialized from the routing table once
    /// and reused for every prefix that origin announces.
    pub fn capture(scenario: &Scenario, peers: &[Asn], t: SimTime) -> RibSnapshot {
        let graph = AsGraph::at_time(scenario, t);
        Self::capture_with(&scenario.world, &graph, peers, t, &scenario.control_plane_at(t))
    }

    /// Captures the snapshot for a pre-built AS graph with a quiet
    /// control plane. Routing is a pure function of the topology, so
    /// callers diffing many instants (e.g. `derive_updates`) can compare
    /// graphs first and skip captures entirely when connectivity did not
    /// change.
    pub fn capture_from_graph(
        world: &World,
        graph: &AsGraph,
        peers: &[Asn],
        t: SimTime,
    ) -> RibSnapshot {
        Self::capture_with(world, graph, peers, t, &ControlPlaneState::default())
    }

    /// [`RibSnapshot::capture_from_graph`] with an explicit control-plane
    /// state. Routing (and therefore the snapshot) is a pure function of
    /// `(topology, control-plane state)` — `derive_updates` memoizes on
    /// exactly that pair.
    pub fn capture_with(
        world: &World,
        graph: &AsGraph,
        peers: &[Asn],
        t: SimTime,
        control: &ControlPlaneState,
    ) -> RibSnapshot {
        let routing = RoutingTable::compute_with(
            graph,
            world,
            crate::routing::default_threads(),
            &control.into(),
        );
        // Hijacked prefixes, pre-indexed so quiet prefixes stay on the
        // memoized per-origin fast path.
        let mut hijacked: BTreeMap<Ipv4Net, Vec<Asn>> = BTreeMap::new();
        for &(prefix, origin) in &control.hijacks {
            hijacked.entry(prefix).or_default().push(origin);
        }
        let mut entries = Vec::new();
        let mut paths: BTreeMap<Asn, Option<Vec<Asn>>> = BTreeMap::new();
        for peer in peers {
            paths.clear();
            for pfx in &world.prefixes {
                // MOAS arbitration: the vantage point holds the route to
                // whichever candidate origin its selection prefers —
                // `(kind, hops, next hop)`, then lowest origin ASN.
                let origin = match hijacked.get(&pfx.net) {
                    None => pfx.origin,
                    Some(bogus) => {
                        let best = bogus
                            .iter()
                            .chain(std::iter::once(&pfx.origin))
                            .filter_map(|&o| routing.selection(*peer, o).map(|k| (k, o)))
                            .min();
                        match best {
                            Some((_, o)) => o,
                            None => continue, // no candidate origin is routed
                        }
                    }
                };
                let path = paths
                    .entry(origin)
                    .or_insert_with(|| routing.route(*peer, origin).map(|r| r.as_path));
                if let Some(path) = path {
                    entries.push(RibEntry {
                        peer: *peer,
                        prefix: pfx.net,
                        as_path: path.clone(),
                    });
                }
            }
        }
        entries.sort_by_key(|a| (a.peer, a.prefix));
        RibSnapshot { at: t, entries }
    }

    /// Entries of one peer.
    pub fn for_peer(&self, peer: Asn) -> impl Iterator<Item = &RibEntry> + '_ {
        self.entries.iter().filter(move |e| e.peer == peer)
    }

    /// Index by (peer, prefix) for diffing.
    pub fn index(&self) -> BTreeMap<(Asn, Ipv4Net), &RibEntry> {
        self.entries.iter().map(|e| ((e.peer, e.prefix), e)).collect()
    }

    /// Fraction of (peer, prefix) pairs with a route, relative to the full
    /// cross product — a reachability health metric.
    pub fn coverage(&self, peers: usize, prefixes: usize) -> f64 {
        if peers == 0 || prefixes == 0 {
            return 0.0;
        }
        self.entries.len() as f64 / (peers * prefixes) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::SimDuration;
    use world::{generate, EventKind, WorldConfig};

    fn scenario_with_cut() -> (Scenario, net_model::CableId, SimTime) {
        let world = generate(&WorldConfig::default());
        let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let cut = SimTime::EPOCH + SimDuration::days(5);
        let s = Scenario::quiet(world, 10).with_event(EventKind::CableCut { cable }, cut);
        (s, cable, cut)
    }

    #[test]
    fn snapshot_is_canonical_and_covers_most_pairs() {
        let (s, _, _) = scenario_with_cut();
        let peers: Vec<Asn> = s.world.ases.iter().take(10).map(|a| a.asn).collect();
        let rib = RibSnapshot::capture(&s, &peers, SimTime::EPOCH);
        for w in rib.entries.windows(2) {
            assert!((w[0].peer, w[0].prefix) < (w[1].peer, w[1].prefix));
        }
        let cov = rib.coverage(peers.len(), s.world.prefixes.len());
        assert!(cov > 0.9, "coverage {cov}");
    }

    #[test]
    fn entries_terminate_at_true_origin() {
        let (s, _, _) = scenario_with_cut();
        let peers = vec![s.world.ases[0].asn];
        let rib = RibSnapshot::capture(&s, &peers, SimTime::EPOCH);
        for e in &rib.entries {
            let pfx = s.world.prefixes.iter().find(|p| p.net == e.prefix).unwrap();
            assert_eq!(e.origin(), pfx.origin);
        }
    }

    #[test]
    fn hijack_creates_a_moas_split_across_vantage_points() {
        let world = generate(&WorldConfig::default());
        // Victim: a prefix whose origin is not itself a collector-tier AS;
        // hijacker: an AS in the victim's topological vicinity is not
        // required — any other AS will capture *some* vantage points.
        let victim = world.prefixes[0];
        let hijacker = world
            .ases
            .iter()
            .map(|a| a.asn)
            .find(|&a| a != victim.origin)
            .unwrap();
        let at = SimTime::EPOCH + SimDuration::days(5);
        let s = Scenario::quiet(world, 10).with_event(
            world::EventKind::PrefixHijack { origin: hijacker, victim_prefix: victim.net },
            at,
        );
        let peers: Vec<Asn> = s.world.ases.iter().map(|a| a.asn).collect();

        let before = RibSnapshot::capture(&s, &peers, at - SimDuration::hours(1));
        let after = RibSnapshot::capture(&s, &peers, at + SimDuration::hours(1));

        let origins = |rib: &RibSnapshot| -> std::collections::BTreeSet<Asn> {
            rib.entries.iter().filter(|e| e.prefix == victim.net).map(|e| e.origin()).collect()
        };
        assert_eq!(
            origins(&before).into_iter().collect::<Vec<_>>(),
            vec![victim.origin],
            "pre-hijack the prefix has one origin"
        );
        let moas = origins(&after);
        assert!(moas.contains(&hijacker), "some vantage point must capture the hijack");
        assert!(
            moas.contains(&victim.origin),
            "a partial hijack leaves other vantage points on the legitimate origin"
        );
        // Every non-hijacked prefix is untouched.
        let unchanged = after
            .entries
            .iter()
            .filter(|e| e.prefix != victim.net)
            .zip(before.entries.iter().filter(|e| e.prefix != victim.net))
            .all(|(a, b)| a == b);
        assert!(unchanged, "hijack must only move the victim prefix");
    }

    #[test]
    fn cut_changes_some_paths() {
        let (s, _, cut) = scenario_with_cut();
        let peers: Vec<Asn> = s.world.ases.iter().map(|a| a.asn).take(30).collect();
        let before = RibSnapshot::capture(&s, &peers, cut - SimDuration::hours(1));
        let after = RibSnapshot::capture(&s, &peers, cut + SimDuration::hours(1));
        let bi = before.index();
        let changed = after
            .entries
            .iter()
            .filter(|e| bi.get(&(e.peer, e.prefix)).is_none_or(|b| b.as_path != e.as_path))
            .count();
        assert!(changed > 0, "a major cable cut must move some best paths");
    }
}
