//! Equivalence suite: the dense-index routing engine must produce
//! **byte-identical** selected routes to the seed algorithm (retained as
//! `routing::reference`), on the default world and on arbitrary small
//! relationship graphs, and its sharded sweep must be bit-identical for
//! every worker count.

use proptest::prelude::*;

use bgp_sim::routing::{is_valley_free, reference};
use bgp_sim::{AsGraph, PolicyOverrides, RoutingTable};
use net_model::{Asn, SimDuration, SimTime};
use world::{generate, EventKind, RelKind, Scenario, WorldConfig};

/// Compares the dense table against the reference map for every
/// `(destination, holder)` pair, in both directions.
fn assert_equivalent(graph: &AsGraph, table: &RoutingTable) {
    let nodes: Vec<Asn> = graph.nodes().collect();
    for &dst in &nodes {
        let expected = reference::compute_for_destination(graph, dst);
        assert_eq!(
            table.reachable_from(dst),
            expected.len(),
            "holder count towards {dst} diverges"
        );
        for &src in &nodes {
            let dense = table.route(src, dst);
            let seed = expected.get(&src).cloned();
            assert_eq!(dense, seed, "route {src} -> {dst} diverges from the seed algorithm");
            assert_eq!(table.kind(src, dst), seed.as_ref().map(|r| r.kind));
            assert_eq!(table.hop_count(src, dst), seed.as_ref().map(|r| r.hop_count()));
        }
    }
}

#[test]
fn dense_engine_matches_seed_on_default_world() {
    let world = generate(&WorldConfig::default());
    let scenario = Scenario::quiet(world, 10);
    let graph = AsGraph::at_time(&scenario, SimTime::EPOCH);
    let table = RoutingTable::compute(&graph, &scenario.world);
    assert_equivalent(&graph, &table);
}

#[test]
fn dense_engine_matches_seed_after_a_cable_cut() {
    let world = generate(&WorldConfig::default());
    let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
    let cut = SimTime::EPOCH + SimDuration::days(5);
    let scenario = Scenario::quiet(world, 10).with_event(EventKind::CableCut { cable }, cut);
    let graph = AsGraph::at_time(&scenario, cut + SimDuration::hours(1));
    let table = RoutingTable::compute(&graph, &scenario.world);
    assert_equivalent(&graph, &table);
}

#[test]
fn sharded_sweep_is_bit_identical_across_worker_counts() {
    let world = generate(&WorldConfig::default());
    let scenario = Scenario::quiet(world, 10);
    let graph = AsGraph::at_time(&scenario, SimTime::EPOCH);

    let t1 = RoutingTable::compute_with_threads(&graph, &scenario.world, 1);
    let t2 = RoutingTable::compute_with_threads(&graph, &scenario.world, 2);
    let t8 = RoutingTable::compute_with_threads(&graph, &scenario.world, 8);

    let all1: Vec<_> = t1.iter().collect();
    let all2: Vec<_> = t2.iter().collect();
    let all8: Vec<_> = t8.iter().collect();
    assert_eq!(all1, all2, "1 vs 2 workers");
    assert_eq!(all1, all8, "1 vs 8 workers");
}

/// A leaker fixture on the default world: a multi-homed access AS (two
/// or more providers), so the leak of one provider-learned route into
/// the other provider is guaranteed to be an illegitimate export.
fn default_world_leaker(scenario: &Scenario, graph: &AsGraph) -> PolicyOverrides {
    let leaker = scenario
        .world
        .ases
        .iter()
        .map(|a| a.asn)
        .find(|&a| graph.providers(a).len() >= 2)
        .expect("the default world has multi-homed ASes");
    PolicyOverrides::leaking([leaker])
}

#[test]
fn dense_engine_matches_seed_with_route_leaks() {
    let world = generate(&WorldConfig::default());
    let scenario = Scenario::quiet(world, 10);
    let graph = AsGraph::at_time(&scenario, SimTime::EPOCH);
    let overrides = default_world_leaker(&scenario, &graph);

    let table = RoutingTable::compute_for_graph_with(&graph, 1, &overrides);
    let nodes: Vec<Asn> = graph.nodes().collect();
    for &dst in &nodes {
        let expected = reference::compute_for_destination_with(&graph, dst, &overrides);
        assert_eq!(table.reachable_from(dst), expected.len(), "holders towards {dst}");
        for &src in &nodes {
            assert_eq!(
                table.route(src, dst),
                expected.get(&src).cloned(),
                "leaked route {src} -> {dst} diverges from the reference"
            );
        }
    }
}

#[test]
fn route_leak_changes_routes_and_breaks_valley_freeness() {
    let world = generate(&WorldConfig::default());
    let scenario = Scenario::quiet(world, 10);
    let graph = AsGraph::at_time(&scenario, SimTime::EPOCH);
    let overrides = default_world_leaker(&scenario, &graph);

    let base = RoutingTable::compute_for_graph(&graph, 2);
    let leaked = RoutingTable::compute_for_graph_with(&graph, 2, &overrides);
    let base_routes: Vec<_> = base.iter().collect();
    let leaked_routes: Vec<_> = leaked.iter().collect();
    assert_ne!(base_routes, leaked_routes, "the leak must move at least one best path");

    // Some selected path now rides the leak — and is no longer
    // valley-free (the defining signature a leak detector keys on).
    let violating = leaked_routes
        .iter()
        .filter(|(_, _, r)| !is_valley_free(&graph, &r.as_path))
        .count();
    assert!(violating > 0, "a leak must produce valley-violating selected paths");
    // The quiet sweep stays entirely valley-free, as always.
    assert!(base_routes.iter().all(|(_, _, r)| is_valley_free(&graph, &r.as_path)));
}

#[test]
fn leak_sweep_is_bit_identical_across_worker_counts() {
    let world = generate(&WorldConfig::default());
    let scenario = Scenario::quiet(world, 10);
    let graph = AsGraph::at_time(&scenario, SimTime::EPOCH);
    let overrides = default_world_leaker(&scenario, &graph);

    let t1 = RoutingTable::compute_for_graph_with(&graph, 1, &overrides);
    let t2 = RoutingTable::compute_for_graph_with(&graph, 2, &overrides);
    let t8 = RoutingTable::compute_for_graph_with(&graph, 8, &overrides);
    let all1: Vec<_> = t1.iter().collect();
    let all2: Vec<_> = t2.iter().collect();
    let all8: Vec<_> = t8.iter().collect();
    assert_eq!(all1, all2, "1 vs 2 workers (leak pass)");
    assert_eq!(all1, all8, "1 vs 8 workers (leak pass)");
}

/// The multi-homed ASes of the default world, ascending — candidate
/// leakers whose leaks are guaranteed to be illegitimate exports.
fn multi_homed(scenario: &Scenario, graph: &AsGraph) -> Vec<Asn> {
    scenario
        .world
        .ases
        .iter()
        .map(|a| a.asn)
        .filter(|&a| graph.providers(a).len() >= 2)
        .collect()
}

/// A composed timeline on the default world: a cable cut, a bounded
/// route leak, and a prefix hijack that goes live *inside* the leak
/// window. Mirrors the campaign crate's composed families
/// (hijack-during-cascade), where incidents overlap instead of running
/// one at a time.
fn composed_scenario() -> (Scenario, SimTime) {
    let world = generate(&WorldConfig::default());
    let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
    let victim = world.prefixes[0];
    let hijacker = world
        .ases
        .iter()
        .map(|a| a.asn)
        .find(|&a| a != victim.origin)
        .expect("more than one AS");

    let cut = SimTime::EPOCH + SimDuration::days(2);
    let leak_open = SimTime::EPOCH + SimDuration::days(4);
    let leak_close = SimTime::EPOCH + SimDuration::days(7);
    let hijack_at = SimTime::EPOCH + SimDuration::days(5);

    let mut scenario = Scenario::quiet(world, 10).with_event(EventKind::CableCut { cable }, cut);
    let graph = AsGraph::at_time(&scenario, SimTime::EPOCH);
    let leaker = multi_homed(&scenario, &graph)[0];
    scenario.push_event(EventKind::RouteLeak { leaker }, leak_open, Some(leak_close));
    scenario.push_event(
        EventKind::PrefixHijack { origin: hijacker, victim_prefix: victim.net },
        hijack_at,
        None,
    );
    // Mid-overlap: the cut is live, the leak window is open, the hijack
    // has started.
    (scenario, hijack_at + SimDuration::hours(1))
}

#[test]
fn dense_engine_matches_seed_on_composed_timelines() {
    let (scenario, mid) = composed_scenario();
    let control = scenario.control_plane_at(mid);
    assert!(!control.hijacks.is_empty(), "hijack live mid-overlap");
    assert_eq!(control.leakers.len(), 1, "leak window open mid-overlap");

    // The cut topology *and* the leak overrides apply at once; the dense
    // engine must still match the seed algorithm byte for byte.
    let graph = AsGraph::at_time(&scenario, mid);
    let overrides = PolicyOverrides::from(&control);
    let table = RoutingTable::compute_for_graph_with(&graph, 2, &overrides);
    let nodes: Vec<Asn> = graph.nodes().collect();
    for &dst in &nodes {
        let expected = reference::compute_for_destination_with(&graph, dst, &overrides);
        assert_eq!(table.reachable_from(dst), expected.len(), "holders towards {dst}");
        for &src in &nodes {
            assert_eq!(
                table.route(src, dst),
                expected.get(&src).cloned(),
                "composed route {src} -> {dst} diverges from the seed algorithm"
            );
        }
    }
}

#[test]
fn composed_timeline_updates_are_insertion_order_invariant() {
    // merge_scripts canonicalizes composed event order by content; the
    // update stream must not care which member family's events landed
    // first on the timeline.
    let (scenario, _) = composed_scenario();
    let mut reversed = Scenario::quiet(scenario.world_handle(), 10);
    for ev in scenario.events.iter().rev() {
        reversed.push_event(ev.kind.clone(), ev.at, ev.until);
    }
    let peers: Vec<Asn> = scenario.world.ases.iter().take(8).map(|a| a.asn).collect();
    let canonical = bgp_sim::updates::derive_updates(&scenario, &peers);
    assert!(!canonical.is_empty(), "a composed timeline produces churn");
    assert_eq!(bgp_sim::updates::derive_updates(&reversed, &peers), canonical);
    // And the derivation itself is a pure function of the scenario.
    assert_eq!(bgp_sim::updates::derive_updates(&scenario, &peers), canonical);
}

#[test]
fn staggered_overlapping_leaks_open_and_close_independently() {
    let world = generate(&WorldConfig::default());
    let scenario = Scenario::quiet(world, 10);
    let graph = AsGraph::at_time(&scenario, SimTime::EPOCH);
    let homed = multi_homed(&scenario, &graph);
    assert!(homed.len() >= 2, "the default world has ≥2 multi-homed ASes");
    let (first, second) = (homed[0], homed[1]);

    // first leaks over days [2, 6]; second over days [4, 8]: the windows
    // overlap on [4, 6] and each closes on its own schedule.
    let mut s = scenario;
    let day = |d: i64| SimTime::EPOCH + SimDuration::days(d);
    s.push_event(EventKind::RouteLeak { leaker: first }, day(2), Some(day(6)));
    s.push_event(EventKind::RouteLeak { leaker: second }, day(4), Some(day(8)));

    assert!(s.control_plane_at(day(1)).is_quiet());
    assert_eq!(s.control_plane_at(day(3)).leakers, vec![first]);
    let mut both = vec![first, second];
    both.sort();
    assert_eq!(s.control_plane_at(day(5)).leakers, both, "overlap window");
    assert_eq!(s.control_plane_at(day(7)).leakers, vec![second]);
    assert!(s.control_plane_at(day(9)).is_quiet(), "both windows closed");

    // During the overlap both leakers apply at once: dense == reference.
    let overrides = PolicyOverrides::from(&s.control_plane_at(day(5)));
    assert_eq!(overrides.leakers().len(), 2);
    let table = RoutingTable::compute_for_graph_with(&graph, 2, &overrides);
    let nodes: Vec<Asn> = graph.nodes().collect();
    for &dst in &nodes {
        let expected = reference::compute_for_destination_with(&graph, dst, &overrides);
        for &src in &nodes {
            assert_eq!(
                table.route(src, dst),
                expected.get(&src).cloned(),
                "double-leak route {src} -> {dst} diverges from the seed algorithm"
            );
        }
    }

    // The update stream walks every boundary: churn at both openings and
    // both closings, and the post-horizon state is the quiet one again.
    let peers: Vec<Asn> = s.world.ases.iter().take(8).map(|a| a.asn).collect();
    let ups = bgp_sim::updates::derive_updates(&s, &peers);
    assert!(!ups.is_empty());
    let times: std::collections::BTreeSet<SimTime> =
        ups.iter().map(|u| SimTime(u.time.0 - u.time.0 % 3600)).collect();
    assert!(times.len() >= 2, "churn at more than one boundary: {times:?}");
}

/// A random small relationship graph: a loose tier structure (every
/// non-top node buys transit from some lower-indexed node, so the graph is
/// connected upwards) plus random extra provider and peer edges.
fn arbitrary_graph() -> impl Strategy<Value = (Vec<Asn>, Vec<(Asn, Asn, RelKind)>)> {
    (4usize..24, proptest::collection::vec((any::<u16>(), any::<u16>(), any::<u8>()), 0..64))
        .prop_map(|(n, raw_edges)| {
            let asns: Vec<Asn> = (0..n).map(|i| Asn(100 + i as u32 * 7)).collect();
            let mut edges: Vec<(Asn, Asn, RelKind)> = Vec::new();
            // Backbone: node i (i > 0) is a customer of some j < i.
            for i in 1..n {
                let j = (i * 13 + 5) % i;
                edges.push((asns[j], asns[i], RelKind::ProviderCustomer));
            }
            for (a, b, k) in raw_edges {
                let (a, b) = (a as usize % n, b as usize % n);
                if a == b {
                    continue;
                }
                let kind = if k % 3 == 0 { RelKind::Peer } else { RelKind::ProviderCustomer };
                edges.push((asns[a], asns[b], kind));
            }
            (asns, edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On arbitrary relationship graphs the dense engine and the seed
    /// algorithm select byte-identical routes for every destination.
    #[test]
    fn dense_engine_matches_seed_on_arbitrary_graphs(spec in arbitrary_graph()) {
        let (asns, edges) = spec;
        let graph = AsGraph::from_relationships(asns, edges);
        let table = RoutingTable::compute_for_graph(&graph, 1);
        let nodes: Vec<Asn> = graph.nodes().collect();
        for &dst in &nodes {
            let expected = reference::compute_for_destination(&graph, dst);
            for &src in &nodes {
                let dense = table.route(src, dst);
                let seed = expected.get(&src).cloned();
                prop_assert_eq!(dense, seed);
            }
        }
    }

    /// With arbitrary leaker sets the dense leak stage still matches the
    /// reference byte-for-byte, at several worker counts.
    #[test]
    fn leak_overrides_match_seed_on_arbitrary_graphs(
        spec in arbitrary_graph(),
        picks in proptest::collection::vec(any::<u16>(), 0..4),
    ) {
        let (asns, edges) = spec;
        let leakers: Vec<Asn> =
            picks.iter().map(|&p| asns[p as usize % asns.len()]).collect();
        let overrides = PolicyOverrides::leaking(leakers);
        let graph = AsGraph::from_relationships(asns, edges);
        let t1 = RoutingTable::compute_for_graph_with(&graph, 1, &overrides);
        let t3 = RoutingTable::compute_for_graph_with(&graph, 3, &overrides);
        let nodes: Vec<Asn> = graph.nodes().collect();
        for &dst in &nodes {
            let expected =
                reference::compute_for_destination_with(&graph, dst, &overrides);
            for &src in &nodes {
                let dense = t1.route(src, dst);
                prop_assert_eq!(dense.clone(), expected.get(&src).cloned());
                prop_assert_eq!(dense, t3.route(src, dst));
            }
        }
    }

    /// Sharding arbitrary graphs across workers never changes the output.
    #[test]
    fn arbitrary_graphs_are_thread_count_invariant(spec in arbitrary_graph()) {
        let (asns, edges) = spec;
        let graph = AsGraph::from_relationships(asns, edges);
        let t1 = RoutingTable::compute_for_graph(&graph, 1);
        let t3 = RoutingTable::compute_for_graph(&graph, 3);
        let all1: Vec<_> = t1.iter().collect();
        let all3: Vec<_> = t3.iter().collect();
        prop_assert_eq!(all1, all3);
    }

    /// Every dense-selected path is valley-free and simple on arbitrary
    /// graphs, not just on generated worlds.
    #[test]
    fn dense_routes_are_valley_free_and_simple(spec in arbitrary_graph()) {
        let (asns, edges) = spec;
        let graph = AsGraph::from_relationships(asns, edges);
        let table = RoutingTable::compute_for_graph(&graph, 2);
        for (_, _, route) in table.iter() {
            prop_assert!(is_valley_free(&graph, &route.as_path));
            let mut p = route.as_path.clone();
            p.sort();
            p.dedup();
            prop_assert_eq!(p.len(), route.as_path.len());
        }
    }
}
