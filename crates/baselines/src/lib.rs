//! # baselines — expert solutions and comparison metrics
//!
//! The paper validates ArachNet by comparing generated workflows against
//! expert implementations (the Xaminer specialists' solutions). This crate
//! supplies both sides of that comparison:
//!
//! * [`expert`] — hand-written expert workflows for the four case studies,
//!   built the way a Xaminer author would build them (using the
//!   framework's own high-level abstractions where they exist);
//! * [`metrics`] — the similarity measures the evaluation reports:
//!   affected-set Jaccard, Spearman rank correlation of country impact
//!   scores, function-set overlap, timeline alignment, and verdict
//!   agreement.

pub mod expert;
pub mod metrics;

pub use expert::{expert_cs1, expert_cs2, expert_cs3, expert_cs4};
pub use metrics::{
    country_table_similarity, function_overlap, spearman, timeline_alignment, CountrySimilarity,
};
