//! Similarity metrics for expert-vs-generated comparison.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use toolkit::data::{CountryTableData, TimelineData};
use workflow::Workflow;

/// Similarity between two country impact tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountrySimilarity {
    /// Jaccard overlap of affected-country sets.
    pub jaccard: f64,
    /// Spearman rank correlation of impact scores over common countries
    /// (`None` with fewer than 3 common countries).
    pub spearman: Option<f64>,
    /// Overlap of the top-5 most impacted countries.
    pub top5_overlap: f64,
    pub common_countries: usize,
}

/// Compares two country tables.
pub fn country_table_similarity(a: &CountryTableData, b: &CountryTableData) -> CountrySimilarity {
    let set_a: Vec<&str> = a.rows.iter().map(|r| r.country.as_str()).collect();
    let set_b: Vec<&str> = b.rows.iter().map(|r| r.country.as_str()).collect();

    let inter: Vec<&&str> = set_a.iter().filter(|c| set_b.contains(*c)).collect();
    let union = set_a.len() + set_b.len() - inter.len();
    let jaccard = if union == 0 { 1.0 } else { inter.len() as f64 / union as f64 };

    // Spearman over common countries.
    let scores_a: BTreeMap<&str, f64> =
        a.rows.iter().map(|r| (r.country.as_str(), r.impact_score)).collect();
    let scores_b: BTreeMap<&str, f64> =
        b.rows.iter().map(|r| (r.country.as_str(), r.impact_score)).collect();
    let common: Vec<&str> = scores_a.keys().filter(|c| scores_b.contains_key(*c)).copied().collect();
    let spearman_v = if common.len() >= 3 {
        let xs: Vec<f64> = common.iter().map(|c| scores_a[c]).collect();
        let ys: Vec<f64> = common.iter().map(|c| scores_b[c]).collect();
        Some(spearman(&xs, &ys))
    } else {
        None
    };

    let top_a = a.top_countries(5);
    let top_b = b.top_countries(5);
    let top_hits = top_a.iter().filter(|c| top_b.contains(c)).count();
    let top5_overlap = if top_a.is_empty() && top_b.is_empty() {
        1.0
    } else {
        top_hits as f64 / top_a.len().max(top_b.len()).max(1) as f64
    };

    CountrySimilarity {
        jaccard,
        spearman: spearman_v,
        top5_overlap,
        common_countries: common.len(),
    }
}

/// Spearman rank correlation of two equal-length samples.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Average ranks (ties share the mean rank).
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap().then(a.cmp(&b)));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = mean_rank;
        }
        i = j + 1;
    }
    out
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    if vx == 0.0 || vy == 0.0 {
        return if vx == vy { 1.0 } else { 0.0 };
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Jaccard overlap of the function sets of two workflows — the
/// "functional overlap" comparison of the case studies.
pub fn function_overlap(a: &Workflow, b: &Workflow) -> f64 {
    let fa: Vec<String> = a.functions_used().into_iter().map(|f| f.0).collect();
    let fb: Vec<String> = b.functions_used().into_iter().map(|f| f.0).collect();
    let inter = fa.iter().filter(|f| fb.contains(f)).count();
    let union = fa.len() + fb.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Timeline alignment: fraction of events in `a` with a counterpart in `b`
/// on the same layer within `tolerance_s`, and vice versa (F1-style).
pub fn timeline_alignment(a: &TimelineData, b: &TimelineData, tolerance_s: i64) -> f64 {
    if a.events.is_empty() && b.events.is_empty() {
        return 1.0;
    }
    let matched = |from: &TimelineData, to: &TimelineData| -> usize {
        from.events
            .iter()
            .filter(|e| {
                to.events
                    .iter()
                    .any(|f| f.layer == e.layer && (f.t - e.t).abs() <= tolerance_s)
            })
            .count()
    };
    let p = matched(a, b) as f64 / a.events.len().max(1) as f64;
    let r = matched(b, a) as f64 / b.events.len().max(1) as f64;
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toolkit::data::{CountryRow, TimelineEvent};

    fn row(c: &str, score: f64) -> CountryRow {
        CountryRow {
            country: c.into(),
            ips_affected: 1,
            links_affected: 1,
            ases_affected: 1,
            as_links_affected: 1,
            impact_score: score,
        }
    }

    #[test]
    fn identical_tables_are_perfectly_similar() {
        let t = CountryTableData {
            rows: vec![row("EG", 0.9), row("IN", 0.7), row("SG", 0.5), row("FR", 0.2)],
        };
        let s = country_table_similarity(&t, &t);
        assert_eq!(s.jaccard, 1.0);
        assert!((s.spearman.unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(s.top5_overlap, 1.0);
    }

    #[test]
    fn disjoint_tables_score_zero() {
        let a = CountryTableData { rows: vec![row("EG", 0.9)] };
        let b = CountryTableData { rows: vec![row("BR", 0.9)] };
        let s = country_table_similarity(&a, &b);
        assert_eq!(s.jaccard, 0.0);
        assert_eq!(s.spearman, None);
        assert_eq!(s.top5_overlap, 0.0);
    }

    #[test]
    fn spearman_detects_reversed_ranking() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        let ys = vec![4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&xs, &xs.clone()) - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = vec![1.0, 1.0, 2.0];
        let ys = vec![1.0, 1.0, 2.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn function_overlap_counts_shared_functions() {
        use workflow::Step;
        let a = Workflow::new("a", "q")
            .with_step(Step::new("1", "f.x"))
            .with_step(Step::new("2", "f.y"));
        let b = Workflow::new("b", "q")
            .with_step(Step::new("1", "f.y"))
            .with_step(Step::new("2", "f.z"));
        assert!((function_overlap(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(function_overlap(&a, &a), 1.0);
    }

    #[test]
    fn timeline_alignment_respects_tolerance_and_layer() {
        let a = TimelineData {
            events: vec![
                TimelineEvent { t: 100, layer: "cable".into(), description: "x".into() },
                TimelineEvent { t: 200, layer: "routing".into(), description: "y".into() },
            ],
            layers: vec![],
        };
        let b = TimelineData {
            events: vec![
                TimelineEvent { t: 110, layer: "cable".into(), description: "x'".into() },
                TimelineEvent { t: 900, layer: "routing".into(), description: "y'".into() },
            ],
            layers: vec![],
        };
        let f1 = timeline_alignment(&a, &b, 50);
        assert!(f1 > 0.4 && f1 < 1.0, "partial match expected, got {f1}");
        assert_eq!(timeline_alignment(&a, &a, 0), 1.0);
        // Same time, different layer: no match.
        let c = TimelineData {
            events: vec![TimelineEvent { t: 100, layer: "latency".into(), description: "z".into() }],
            layers: vec![],
        };
        let lonely = TimelineData {
            events: vec![TimelineEvent { t: 100, layer: "cable".into(), description: "x".into() }],
            layers: vec![],
        };
        assert_eq!(timeline_alignment(&lonely, &c, 1000), 0.0);
    }
}
