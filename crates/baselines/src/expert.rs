//! Hand-written expert workflows — what a Xaminer/Nautilus specialist
//! would build for each case-study query.
//!
//! The deliberate architectural choices mirror the paper's comparison:
//! the expert leans on Xaminer's **high-level abstractions**
//! (`xaminer.event_impact`, the embedding-style aggregation), while the
//! agent — when those abstractions are withheld (CS1's controlled setup) —
//! must derive an equivalent *direct processing pipeline* from core
//! functions. Functional overlap is then measured by `metrics`.

use registry::DataFormat as F;
use workflow::{Step, Workflow};

/// CS1 expert solution: country-level impact of a named cable failure,
/// via Xaminer's high-level event processing.
pub fn expert_cs1() -> Workflow {
    Workflow::new(
        "expert-cs1",
        "Identify the impact at a country level due to SeaMeWe-5 cable failure",
    )
    .with_step(
        Step::new("resolve", "nautilus.resolve_cable")
            .bind_arg("cable_name", "cable_name", F::Text)
            .because("identify the cable system in the cartography catalog"),
    )
    .with_step(
        Step::new("event", "util.cable_failure_event")
            .bind_step("cable", "resolve")
            .because("express the what-if failure as an event"),
    )
    .with_step(
        Step::new("impact", "xaminer.event_impact")
            .bind_step("event", "event")
            .because("Xaminer's embedding modules aggregate cross-layer metrics directly"),
    )
    .with_output("impact")
}

/// CS2 expert solution: multi-disaster what-if via the *same single
/// event-processing function* applied per disaster kind, results combined
/// — the paper's "handle earthquakes and hurricanes separately ... and
/// combine results for comprehensive global impact metrics".
pub fn expert_cs2() -> Workflow {
    Workflow::new(
        "expert-cs2",
        "Identify the impact of severe earthquakes and hurricanes globally assuming a 10% \
         infra failure probability",
    )
    .with_step(
        Step::new("compile_eq", "util.compile_disasters")
            .bind_arg("disasters", "earthquake_specs", F::DisasterSpecs)
            .bind_arg("failure_probability", "failure_probability", F::Scalar)
            .because("instantiate the seismic hazard zones at the stated probability"),
    )
    .with_step(
        Step::new("impact_eq", "xaminer.event_impact")
            .bind_step("event", "compile_eq")
            .because("process the earthquake events"),
    )
    .with_step(
        Step::new("compile_hu", "util.compile_disasters")
            .bind_arg("disasters", "hurricane_specs", F::DisasterSpecs)
            .bind_arg("failure_probability", "failure_probability", F::Scalar)
            .because("instantiate the storm-belt zones at the stated probability"),
    )
    .with_step(
        Step::new("impact_hu", "xaminer.event_impact")
            .bind_step("event", "compile_hu")
            .because("the same event-processing function handles hurricanes"),
    )
    .with_step(
        Step::new("combined", "util.combine_impact_tables")
            .bind_step("a", "impact_eq")
            .bind_step("b", "impact_hu")
            .because("combine per-disaster results into global metrics"),
    )
    .with_output("combined")
}

/// CS3 expert solution: corridor failure, cascade, and cross-layer
/// temporal synthesis.
pub fn expert_cs3() -> Workflow {
    Workflow::new(
        "expert-cs3",
        "Analyze the cascading effects of submarine cable failures between Europe and Asia",
    )
    .with_step(
        Step::new("map", "nautilus.map_links")
            .because("cross-layer cartography for the corridor"),
    )
    .with_step(
        Step::new("deps", "nautilus.dependency_table")
            .bind_step("mapping", "map")
            .because("cable to link/AS dependency view"),
    )
    .with_step(
        Step::new("corridor", "util.corridor_failure_event")
            .bind_arg("src_region", "src_region", F::RegionScope)
            .bind_arg("dst_region", "dst_region", F::RegionScope)
            .because("the main Europe-Asia systems as a compound failure"),
    )
    .with_step(
        Step::new("impact", "xaminer.process_event")
            .bind_step("event", "corridor")
            .bind_step("deps", "deps")
            .because("direct impact of the corridor failure"),
    )
    .with_step(
        Step::new("cascade", "xaminer.cascade")
            .bind_step("impact", "impact")
            .because("load-redistribution cascade"),
    )
    .with_step(
        Step::new("updates", "bgp.updates")
            .bind_arg("window", "window", F::TimeWindow)
            .because("routing-layer evolution"),
    )
    .with_step(
        Step::new("bursts", "bgp.detect_bursts")
            .bind_step("updates", "updates")
            .bind_arg("window", "window", F::TimeWindow)
            .because("reconvergence bursts"),
    )
    .with_step(
        Step::new("campaign", "traceroute.campaign")
            .bind_arg("src_region", "src_region", F::RegionScope)
            .bind_arg("dst_region", "dst_region", F::RegionScope)
            .bind_arg("window", "window", F::TimeWindow)
            .because("data-plane evolution"),
    )
    .with_step(
        Step::new("anomaly", "traceroute.detect_anomaly")
            .bind_step("campaign", "campaign")
            .because("latency shift detection"),
    )
    .with_step(
        Step::new("timeline", "util.build_timeline")
            .bind_step("cascade", "cascade")
            .bind_step("bursts", "bursts")
            .bind_step("anomaly", "anomaly")
            .because("unified cable/IP/AS/routing/latency timeline"),
    )
    .with_output("timeline")
}

/// CS4 expert solution: forensic root-cause investigation.
pub fn expert_cs4() -> Workflow {
    Workflow::new(
        "expert-cs4",
        "A sudden increase in latency was observed from European probes to Asian \
         destinations starting three days ago. Determine if a submarine cable failure \
         caused this, and if so, identify the specific cable.",
    )
    .with_step(
        Step::new("campaign", "traceroute.campaign")
            .bind_arg("src_region", "src_region", F::RegionScope)
            .bind_arg("dst_region", "dst_region", F::RegionScope)
            .bind_arg("window", "window", F::TimeWindow)
            .because("gather the latency record around the anomaly"),
    )
    .with_step(
        Step::new("anomaly", "traceroute.detect_anomaly")
            .bind_step("campaign", "campaign")
            .because("baseline + significance assessment"),
    )
    .with_step(
        Step::new("map", "nautilus.map_links")
            .because("cross-layer mapping for suspect attribution"),
    )
    .with_step(
        Step::new("deps", "nautilus.dependency_table")
            .bind_step("mapping", "map")
            .because("cable dependency view"),
    )
    .with_step(
        Step::new("suspects", "util.score_suspect_cables")
            .bind_step("anomaly", "anomaly")
            .bind_step("deps", "deps")
            .because("rank cables by likelihood of involvement"),
    )
    .with_step(
        Step::new("updates", "bgp.updates")
            .bind_arg("window", "window", F::TimeWindow)
            .because("independent routing evidence"),
    )
    .with_step(
        Step::new("bursts", "bgp.detect_bursts")
            .bind_step("updates", "updates")
            .bind_arg("window", "window", F::TimeWindow)
            .because("routing churn detection"),
    )
    .with_step(
        Step::new("correlation", "util.correlate_evidence")
            .bind_step("bursts", "bursts")
            .bind_step("anomaly", "anomaly")
            .because("temporal correlation of the two evidence streams"),
    )
    .with_step(
        Step::new("verdict", "util.synthesize_verdict")
            .bind_step("suspects", "suspects")
            .bind_step("correlation", "correlation")
            .bind_step("anomaly", "anomaly")
            .because("causation with confidence"),
    )
    .with_output("verdict")
}

/// Query-argument values the expert would supply for each case study.
pub fn expert_args(case: usize, horizon_end: i64) -> std::collections::BTreeMap<String, workflow::Value> {
    use workflow::Value;
    let mut args = std::collections::BTreeMap::new();
    match case {
        1 => {
            args.insert(
                "cable_name".to_string(),
                Value::new(F::Text, serde_json::json!("SeaMeWe-5")),
            );
        }
        2 => {
            args.insert(
                "earthquake_specs".to_string(),
                Value::new(
                    F::DisasterSpecs,
                    serde_json::json!([{"kind": "earthquake", "qualifier": "severe"}]),
                ),
            );
            args.insert(
                "hurricane_specs".to_string(),
                Value::new(
                    F::DisasterSpecs,
                    serde_json::json!([{"kind": "hurricane", "qualifier": "globally"}]),
                ),
            );
            args.insert(
                "failure_probability".to_string(),
                Value::new(F::Scalar, serde_json::json!(0.1)),
            );
        }
        3 | 4 => {
            args.insert(
                "src_region".to_string(),
                Value::new(F::RegionScope, serde_json::json!("Europe")),
            );
            args.insert(
                "dst_region".to_string(),
                Value::new(F::RegionScope, serde_json::json!("Asia")),
            );
            args.insert(
                "window".to_string(),
                Value::new(
                    F::TimeWindow,
                    serde_json::json!({"start": 0, "end": horizon_end}),
                ),
            );
        }
        other => panic!("no case study {other}"),
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use toolkit::standard_registry;
    use workflow::check;

    #[test]
    fn all_expert_workflows_typecheck() {
        let registry = standard_registry();
        for (i, wf) in [expert_cs1(), expert_cs2(), expert_cs3(), expert_cs4()]
            .iter()
            .enumerate()
        {
            let errors = check(wf, &registry);
            assert!(errors.is_empty(), "expert CS{} fails: {errors:?}", i + 1);
        }
    }

    #[test]
    fn expert_cs3_spans_four_measurement_frameworks() {
        let registry = standard_registry();
        let fw = expert_cs3().frameworks_used(&registry);
        for f in ["nautilus", "xaminer", "bgp", "traceroute"] {
            assert!(fw.contains(&f.to_string()), "missing {f}");
        }
    }

    #[test]
    fn expert_args_cover_declared_query_args() {
        for (i, wf) in [expert_cs1(), expert_cs2(), expert_cs3(), expert_cs4()]
            .iter()
            .enumerate()
        {
            let args = expert_args(i + 1, 10 * 86_400);
            for (name, _) in wf.query_args() {
                assert!(args.contains_key(&name), "CS{}: missing arg {name}", i + 1);
            }
        }
    }
}
