//! Political geography: countries and the continental regions used for
//! spatial scoping in queries ("Europe-Asia connectivity", "European
//! probes", "Asian destinations").
//!
//! The country set is a fixed, curated table of 40 economies chosen to give
//! the synthetic world realistic submarine-cable geography: island and
//! peninsular economies that depend heavily on specific cable systems, large
//! transit economies, and landlocked countries reachable only terrestrially.

use serde::{Deserialize, Serialize};

use crate::geo::GeoPoint;

/// Continental region. Used by queries for geographic filtering and by the
/// world generator for cable layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Region {
    Europe,
    Asia,
    NorthAmerica,
    SouthAmerica,
    Africa,
    Oceania,
    MiddleEast,
}

impl Region {
    /// All regions, in canonical order.
    pub const ALL: [Region; 7] = [
        Region::Europe,
        Region::Asia,
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::Africa,
        Region::Oceania,
        Region::MiddleEast,
    ];

    /// Case-insensitive parse from common English names.
    pub fn parse(s: &str) -> Option<Region> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "europe" | "european" | "eu" => Some(Region::Europe),
            "asia" | "asian" | "apac" => Some(Region::Asia),
            "north america" | "na" | "north-america" => Some(Region::NorthAmerica),
            "south america" | "latam" | "south-america" => Some(Region::SouthAmerica),
            "africa" | "african" => Some(Region::Africa),
            "oceania" | "australia" => Some(Region::Oceania),
            "middle east" | "middle-east" | "mena" => Some(Region::MiddleEast),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Region::Europe => "Europe",
            Region::Asia => "Asia",
            Region::NorthAmerica => "North America",
            Region::SouthAmerica => "South America",
            Region::Africa => "Africa",
            Region::Oceania => "Oceania",
            Region::MiddleEast => "Middle East",
        }
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An ISO-3166-alpha-2-style country code. The table below is the closed
/// set of countries that exist in the synthetic world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Country(pub [u8; 2]);

/// One row of the country table.
#[derive(Debug, Clone, Copy)]
pub struct CountryInfo {
    pub code: Country,
    pub name: &'static str,
    pub region: Region,
    /// Representative coordinate (capital or main landing hub).
    pub anchor: GeoPoint,
    /// Whether the country has a coastline (and therefore cable landings).
    pub coastal: bool,
}

macro_rules! country_table {
    ($( $code:literal, $name:literal, $region:ident, $lat:literal, $lon:literal, $coastal:literal; )*) => {
        /// The full country table, in canonical (alphabetical-by-code) order.
        pub fn all_countries() -> Vec<CountryInfo> {
            vec![
                $( CountryInfo {
                    code: Country(*$code),
                    name: $name,
                    region: Region::$region,
                    anchor: GeoPoint::of($lat, $lon),
                    coastal: $coastal,
                }, )*
            ]
        }
    };
}

country_table! {
    b"AE", "United Arab Emirates", MiddleEast, 25.20, 55.27, true;
    b"AU", "Australia", Oceania, -33.87, 151.21, true;
    b"BD", "Bangladesh", Asia, 23.81, 90.41, true;
    b"BR", "Brazil", SouthAmerica, -23.55, -46.63, true;
    b"CA", "Canada", NorthAmerica, 43.65, -79.38, true;
    b"CH", "Switzerland", Europe, 47.37, 8.54, false;
    b"CN", "China", Asia, 31.23, 121.47, true;
    b"DE", "Germany", Europe, 50.11, 8.68, true;
    b"DJ", "Djibouti", Africa, 11.59, 43.15, true;
    b"EG", "Egypt", Africa, 30.04, 31.24, true;
    b"ES", "Spain", Europe, 40.42, -3.70, true;
    b"FR", "France", Europe, 43.30, 5.37, true;
    b"GB", "United Kingdom", Europe, 51.51, -0.13, true;
    b"GR", "Greece", Europe, 37.98, 23.73, true;
    b"HK", "Hong Kong", Asia, 22.32, 114.17, true;
    b"ID", "Indonesia", Asia, -6.21, 106.85, true;
    b"IN", "India", Asia, 19.08, 72.88, true;
    b"IT", "Italy", Europe, 38.12, 13.36, true;
    b"JP", "Japan", Asia, 35.68, 139.69, true;
    b"KE", "Kenya", Africa, -4.04, 39.67, true;
    b"KR", "South Korea", Asia, 35.18, 129.08, true;
    b"KZ", "Kazakhstan", Asia, 43.22, 76.85, false;
    b"LK", "Sri Lanka", Asia, 6.93, 79.85, true;
    b"MM", "Myanmar", Asia, 16.87, 96.20, true;
    b"MV", "Maldives", Asia, 4.18, 73.51, true;
    b"MY", "Malaysia", Asia, 3.139, 101.69, true;
    b"NG", "Nigeria", Africa, 6.45, 3.40, true;
    b"NL", "Netherlands", Europe, 52.37, 4.90, true;
    b"OM", "Oman", MiddleEast, 23.61, 58.59, true;
    b"PK", "Pakistan", Asia, 24.86, 67.00, true;
    b"PT", "Portugal", Europe, 38.72, -9.14, true;
    b"QA", "Qatar", MiddleEast, 25.29, 51.53, true;
    b"SA", "Saudi Arabia", MiddleEast, 21.49, 39.19, true;
    b"SG", "Singapore", Asia, 1.35, 103.82, true;
    b"TH", "Thailand", Asia, 13.76, 100.50, true;
    b"TR", "Turkey", MiddleEast, 41.01, 28.98, true;
    b"TW", "Taiwan", Asia, 25.03, 121.57, true;
    b"US", "United States", NorthAmerica, 40.71, -74.01, true;
    b"VN", "Vietnam", Asia, 10.82, 106.63, true;
    b"ZA", "South Africa", Africa, -33.92, 18.42, true;
}

impl Country {
    /// Builds a code from a two-letter ASCII string, uppercasing it.
    pub fn parse(s: &str) -> Option<Country> {
        let bytes = s.as_bytes();
        if bytes.len() != 2 || !bytes.iter().all(|b| b.is_ascii_alphabetic()) {
            return None;
        }
        Some(Country([bytes[0].to_ascii_uppercase(), bytes[1].to_ascii_uppercase()]))
    }

    /// The two-letter code as a `&str`.
    pub fn code(&self) -> &str {
        std::str::from_utf8(&self.0).expect("country codes are ASCII")
    }

    /// Looks the country up in the canonical table.
    pub fn info(&self) -> Option<CountryInfo> {
        all_countries().into_iter().find(|c| c.code == *self)
    }

    /// English name, or the raw code for countries outside the table.
    pub fn name(&self) -> String {
        self.info().map(|i| i.name.to_string()).unwrap_or_else(|| self.code().to_string())
    }

    /// Continental region, if the country is in the table.
    pub fn region(&self) -> Option<Region> {
        self.info().map(|i| i.region)
    }
}

impl std::fmt::Display for Country {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// Finds a country by (case-insensitive) English name.
pub fn country_by_name(name: &str) -> Option<CountryInfo> {
    let lower = name.to_ascii_lowercase();
    all_countries().into_iter().find(|c| c.name.to_ascii_lowercase() == lower)
}

/// All countries belonging to the given region, in canonical order.
pub fn countries_in_region(region: Region) -> Vec<CountryInfo> {
    all_countries().into_iter().filter(|c| c.region == region).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_unique() {
        let all = all_countries();
        for pair in all.windows(2) {
            assert!(pair[0].code < pair[1].code, "table must be sorted & deduped");
        }
        assert_eq!(all.len(), 40);
    }

    #[test]
    fn parse_roundtrip() {
        let c = Country::parse("sg").unwrap();
        assert_eq!(c.code(), "SG");
        assert_eq!(c.name(), "Singapore");
        assert_eq!(c.region(), Some(Region::Asia));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Country::parse("S").is_none());
        assert!(Country::parse("SGP").is_none());
        assert!(Country::parse("1!").is_none());
    }

    #[test]
    fn region_parse_aliases() {
        assert_eq!(Region::parse("European"), Some(Region::Europe));
        assert_eq!(Region::parse("ASIA"), Some(Region::Asia));
        assert_eq!(Region::parse("middle east"), Some(Region::MiddleEast));
        assert_eq!(Region::parse("atlantis"), None);
    }

    #[test]
    fn every_region_has_a_country() {
        for r in Region::ALL {
            assert!(
                !countries_in_region(r).is_empty(),
                "region {r} has no countries in the table"
            );
        }
    }

    #[test]
    fn landlocked_countries_flagged() {
        assert!(!country_by_name("Switzerland").unwrap().coastal);
        assert!(!country_by_name("Kazakhstan").unwrap().coastal);
        assert!(country_by_name("Singapore").unwrap().coastal);
    }

    #[test]
    fn lookup_by_name_case_insensitive() {
        assert_eq!(country_by_name("sOuTh KoReA").unwrap().code.code(), "KR");
        assert!(country_by_name("Narnia").is_none());
    }
}
