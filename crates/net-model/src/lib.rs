//! # net-model
//!
//! Foundational types shared by every crate in the ArachNet reproduction:
//! geography (coordinates, great-circle distance, fiber latency), political
//! geography (countries and regions), network identifiers (ASNs, prefixes,
//! IP addresses, cable/link/probe ids), and simulation time.
//!
//! The design goal is the same as smoltcp's: simple, robust, well-documented
//! value types with no clever type machinery. Everything here is `Copy` or
//! cheaply `Clone`, serializable, hashable, and totally ordered where a
//! canonical order exists — the substrate simulators rely on deterministic
//! iteration order for reproducibility.

pub mod country;
pub mod geo;
pub mod ids;
pub mod ip;
pub mod time;

pub use country::{Country, Region};
pub use geo::GeoPoint;
pub use ids::{Asn, CableId, CityId, LandingId, LinkId, PrefixId, ProbeId};
pub use ip::{Ipv4Addr, Ipv4Net};
pub use time::{SimDuration, SimTime, TimeWindow};

/// Library-wide result alias.
pub type Result<T> = std::result::Result<T, ModelError>;

/// Errors produced while constructing or parsing model values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A latitude/longitude pair outside the valid range.
    InvalidCoordinate { lat_micro: i64, lon_micro: i64 },
    /// A prefix length above 32 bits.
    InvalidPrefixLength(u8),
    /// Failed to parse a textual representation.
    Parse { what: &'static str, input: String },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::InvalidCoordinate { lat_micro, lon_micro } => write!(
                f,
                "invalid coordinate: lat={} lon={} (micro-degrees)",
                lat_micro, lon_micro
            ),
            ModelError::InvalidPrefixLength(len) => {
                write!(f, "invalid IPv4 prefix length /{len}")
            }
            ModelError::Parse { what, input } => {
                write!(f, "failed to parse {what} from {input:?}")
            }
        }
    }
}

impl std::error::Error for ModelError {}
