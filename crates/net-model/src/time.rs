//! Simulation time.
//!
//! Every scenario runs on its own clock: `SimTime` is seconds since the
//! scenario epoch. Queries speak in relative terms ("starting three days
//! ago"), which agents resolve against the scenario's `now`. Keeping time
//! abstract (no wall-clock reads anywhere) is what makes the whole
//! reproduction deterministic.

use serde::{Deserialize, Serialize};

/// An instant on the scenario clock, in seconds since the scenario epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub i64);

/// A span of scenario time, in seconds. Signed so that arithmetic with
/// "N days ago" style offsets stays total.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub i64);

impl SimDuration {
    pub const fn seconds(s: i64) -> Self {
        SimDuration(s)
    }
    pub const fn minutes(m: i64) -> Self {
        SimDuration(m * 60)
    }
    pub const fn hours(h: i64) -> Self {
        SimDuration(h * 3600)
    }
    pub const fn days(d: i64) -> Self {
        SimDuration(d * 86_400)
    }

    pub fn as_seconds(&self) -> i64 {
        self.0
    }
    pub fn as_hours_f64(&self) -> f64 {
        self.0 as f64 / 3600.0
    }
    pub fn abs(&self) -> SimDuration {
        SimDuration(self.0.abs())
    }
}

impl SimTime {
    /// The scenario epoch.
    pub const EPOCH: SimTime = SimTime(0);

    pub fn seconds_since_epoch(&self) -> i64 {
        self.0
    }

    /// Elapsed time from `earlier` to `self` (negative if `self` precedes).
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }
}

impl std::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl std::ops::Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t+{}s", self.0)
    }
}

impl std::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.0;
        if s.abs() >= 86_400 && s % 86_400 == 0 {
            write!(f, "{}d", s / 86_400)
        } else if s.abs() >= 3600 && s % 3600 == 0 {
            write!(f, "{}h", s / 3600)
        } else {
            write!(f, "{s}s")
        }
    }
}

/// A half-open interval `[start, end)` on the scenario clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeWindow {
    pub start: SimTime,
    pub end: SimTime,
}

impl TimeWindow {
    /// Builds a window; swaps the endpoints if given in reverse.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        if start <= end {
            TimeWindow { start, end }
        } else {
            TimeWindow { start: end, end: start }
        }
    }

    /// A window of `len` ending at `end`.
    pub fn ending_at(end: SimTime, len: SimDuration) -> Self {
        TimeWindow::new(end - len, end)
    }

    /// Whether `t` falls inside `[start, end)`.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Window length.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// Whether the two windows share any instant.
    pub fn overlaps(&self, other: &TimeWindow) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Splits the window into `n` equal consecutive buckets (the statistical
    /// anomaly detector bins measurements this way).
    pub fn buckets(&self, n: usize) -> Vec<TimeWindow> {
        assert!(n > 0, "bucket count must be positive");
        let total = self.duration().as_seconds();
        let step = total / n as i64;
        (0..n)
            .map(|i| {
                let start = SimTime(self.start.0 + step * i as i64);
                let end = if i == n - 1 { self.end } else { SimTime(start.0 + step) };
                TimeWindow { start, end }
            })
            .collect()
    }
}

impl std::fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::EPOCH + SimDuration::days(3);
        assert_eq!(t.seconds_since_epoch(), 3 * 86_400);
        assert_eq!((t - SimDuration::days(3)), SimTime::EPOCH);
        assert_eq!(t.since(SimTime::EPOCH), SimDuration::days(3));
    }

    #[test]
    fn window_normalizes_reversed_endpoints() {
        let w = TimeWindow::new(SimTime(100), SimTime(10));
        assert_eq!(w.start, SimTime(10));
        assert_eq!(w.end, SimTime(100));
    }

    #[test]
    fn window_contains_is_half_open() {
        let w = TimeWindow::new(SimTime(0), SimTime(10));
        assert!(w.contains(SimTime(0)));
        assert!(w.contains(SimTime(9)));
        assert!(!w.contains(SimTime(10)));
    }

    #[test]
    fn window_overlap() {
        let a = TimeWindow::new(SimTime(0), SimTime(10));
        let b = TimeWindow::new(SimTime(9), SimTime(20));
        let c = TimeWindow::new(SimTime(10), SimTime(20));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // half-open: touching is not overlapping
    }

    #[test]
    fn buckets_partition_the_window() {
        let w = TimeWindow::new(SimTime(0), SimTime(100));
        let bs = w.buckets(7);
        assert_eq!(bs.len(), 7);
        assert_eq!(bs[0].start, w.start);
        assert_eq!(bs.last().unwrap().end, w.end);
        for pair in bs.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "buckets must be contiguous");
        }
    }

    #[test]
    fn duration_display() {
        assert_eq!(SimDuration::days(2).to_string(), "2d");
        assert_eq!(SimDuration::hours(5).to_string(), "5h");
        assert_eq!(SimDuration::seconds(42).to_string(), "42s");
    }

    #[test]
    fn ending_at_builds_lookback_window() {
        let now = SimTime(86_400 * 10);
        let w = TimeWindow::ending_at(now, SimDuration::days(3));
        assert_eq!(w.duration(), SimDuration::days(3));
        assert_eq!(w.end, now);
    }
}
