//! Typed identifiers for every entity in the synthetic Internet.
//!
//! Each id is a newtype over a small integer. Using distinct types (instead
//! of bare `u32`s) makes cross-layer code — which constantly juggles cables,
//! IP links, ASes and probes — impossible to mis-wire, at zero runtime cost.

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize,
            Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub fn index(&self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

define_id!(
    /// A submarine cable system (e.g. SeaMeWe-5).
    CableId,
    "cable-"
);
define_id!(
    /// A cable landing station.
    LandingId,
    "ls-"
);
define_id!(
    /// A city / population-and-PoP centre.
    CityId,
    "city-"
);
define_id!(
    /// An inter-router IP-layer link.
    LinkId,
    "link-"
);
define_id!(
    /// An announced IPv4 prefix.
    PrefixId,
    "pfx-"
);
define_id!(
    /// A measurement probe (RIPE-Atlas-style vantage point).
    ProbeId,
    "probe-"
);

/// An Autonomous System Number.
///
/// Not generated through `define_id!` because ASNs carry semantics (they are
/// real protocol values, not dense indices) and display without a dash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl Asn {
    /// Whether the ASN falls in a documented private-use range.
    pub fn is_private(&self) -> bool {
        (64512..=65534).contains(&self.0) || (4_200_000_000..=4_294_967_294).contains(&self.0)
    }
}

impl std::fmt::Display for Asn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(CableId(3).to_string(), "cable-3");
        assert_eq!(ProbeId(12).to_string(), "probe-12");
        assert_eq!(Asn(65001).to_string(), "AS65001");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(LinkId(1) < LinkId(2));
        assert_eq!(LinkId(7).index(), 7);
    }

    #[test]
    fn distinct_id_types_do_not_unify() {
        // This is a compile-time property; the test just documents intent.
        let c: CableId = 1u32.into();
        let l: LinkId = 1u32.into();
        assert_eq!(c.index(), l.index());
    }

    #[test]
    fn private_asn_ranges() {
        assert!(Asn(64512).is_private());
        assert!(Asn(65534).is_private());
        assert!(!Asn(64511).is_private());
        assert!(!Asn(3356).is_private());
        assert!(Asn(4_200_000_000).is_private());
    }
}
