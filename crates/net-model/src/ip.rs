//! IPv4 addresses and prefixes.
//!
//! A thin, deterministic reimplementation of the pieces of the `ipnet`
//! ecosystem the substrates need: address arithmetic, prefix containment,
//! overlap tests and canonical formatting. Addresses are plain `u32`
//! wrappers so tables of millions of them stay compact.

use serde::{Deserialize, Serialize};

use crate::{ModelError, Result};

/// An IPv4 address (network byte order semantics, host-order storage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// Builds an address from dotted-quad octets.
    pub fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(u32::from_be_bytes([a, b, c, d]))
    }

    /// The four octets.
    pub fn octets(&self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Parses a dotted-quad string.
    pub fn parse(s: &str) -> Result<Self> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(ModelError::Parse { what: "Ipv4Addr", input: s.to_string() });
        }
        let mut octets = [0u8; 4];
        for (i, p) in parts.iter().enumerate() {
            octets[i] = p
                .parse::<u8>()
                .map_err(|_| ModelError::Parse { what: "Ipv4Addr", input: s.to_string() })?;
        }
        Ok(Ipv4Addr(u32::from_be_bytes(octets)))
    }

    /// Address `offset` positions after `self`, saturating at the top of the
    /// address space.
    pub fn offset(&self, offset: u32) -> Ipv4Addr {
        Ipv4Addr(self.0.saturating_add(offset))
    }
}

impl std::fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// An IPv4 prefix in CIDR notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv4Net {
    network: Ipv4Addr,
    len: u8,
}

impl Ipv4Net {
    /// Builds a prefix, canonicalizing the network address (host bits are
    /// zeroed) and validating the length.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self> {
        if len > 32 {
            return Err(ModelError::InvalidPrefixLength(len));
        }
        Ok(Ipv4Net { network: Ipv4Addr(addr.0 & Self::mask_bits(len)), len })
    }

    /// Parses `a.b.c.d/len`.
    pub fn parse(s: &str) -> Result<Self> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| ModelError::Parse { what: "Ipv4Net", input: s.to_string() })?;
        let len: u8 = len
            .parse()
            .map_err(|_| ModelError::Parse { what: "Ipv4Net", input: s.to_string() })?;
        Ipv4Net::new(Ipv4Addr::parse(addr)?, len)
    }

    fn mask_bits(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// The (canonicalized) network address.
    pub fn network(&self) -> Ipv4Addr {
        self.network
    }

    /// The prefix length. (Not a container length — a /0 prefix covers
    /// the whole address space, so there is no meaningful `is_empty`.)
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Number of addresses covered by the prefix.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len as u64)
    }

    /// Whether `addr` falls inside the prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (addr.0 & Self::mask_bits(self.len)) == self.network.0
    }

    /// Whether the two prefixes share any address.
    pub fn overlaps(&self, other: &Ipv4Net) -> bool {
        let shorter = self.len.min(other.len);
        let mask = Self::mask_bits(shorter);
        (self.network.0 & mask) == (other.network.0 & mask)
    }

    /// Whether `other` is fully contained in `self` (or equal).
    pub fn covers(&self, other: &Ipv4Net) -> bool {
        self.len <= other.len && self.contains(other.network)
    }

    /// The `i`-th host address within the prefix (no broadcast/network
    /// conventions — the simulator treats the block as a flat pool).
    pub fn host(&self, i: u32) -> Ipv4Addr {
        debug_assert!((i as u64) < self.size());
        Ipv4Addr(self.network.0 + i)
    }
}

impl std::fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.network, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_parse_and_display_roundtrip() {
        let a = Ipv4Addr::parse("192.0.2.17").unwrap();
        assert_eq!(a.to_string(), "192.0.2.17");
        assert_eq!(a.octets(), [192, 0, 2, 17]);
    }

    #[test]
    fn addr_parse_rejects_malformed() {
        for bad in ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""] {
            assert!(Ipv4Addr::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn prefix_canonicalizes_host_bits() {
        let p = Ipv4Net::new(Ipv4Addr::parse("10.1.2.3").unwrap(), 16).unwrap();
        assert_eq!(p.to_string(), "10.1.0.0/16");
        assert_eq!(p.size(), 65536);
    }

    #[test]
    fn prefix_contains_and_covers() {
        let p = Ipv4Net::parse("203.0.113.0/24").unwrap();
        assert!(p.contains(Ipv4Addr::parse("203.0.113.200").unwrap()));
        assert!(!p.contains(Ipv4Addr::parse("203.0.114.1").unwrap()));
        let sub = Ipv4Net::parse("203.0.113.128/25").unwrap();
        assert!(p.covers(&sub));
        assert!(!sub.covers(&p));
        assert!(p.covers(&p));
    }

    #[test]
    fn overlap_is_symmetric() {
        let a = Ipv4Net::parse("10.0.0.0/8").unwrap();
        let b = Ipv4Net::parse("10.42.0.0/16").unwrap();
        let c = Ipv4Net::parse("192.168.0.0/16").unwrap();
        assert!(a.overlaps(&b) && b.overlaps(&a));
        assert!(!a.overlaps(&c) && !c.overlaps(&a));
    }

    #[test]
    fn zero_length_prefix_contains_everything() {
        let p = Ipv4Net::parse("0.0.0.0/0").unwrap();
        assert!(p.contains(Ipv4Addr::parse("255.255.255.255").unwrap()));
        assert_eq!(p.size(), 1 << 32);
    }

    #[test]
    fn invalid_length_rejected() {
        assert!(Ipv4Net::new(Ipv4Addr(0), 33).is_err());
        assert!(Ipv4Net::parse("1.2.3.0/40").is_err());
    }

    #[test]
    fn host_enumeration() {
        let p = Ipv4Net::parse("198.51.100.0/30").unwrap();
        assert_eq!(p.host(0).to_string(), "198.51.100.0");
        assert_eq!(p.host(3).to_string(), "198.51.100.3");
    }
}
