//! Geographic primitives: points on the globe, great-circle distance, and
//! the propagation-latency model used by the traceroute and Nautilus
//! substrates.
//!
//! Latitude/longitude are stored in micro-degrees as `i64` so that
//! `GeoPoint` is `Eq + Hash` and deterministic across platforms; all
//! computation converts to `f64` radians at the edges.

use serde::{Deserialize, Serialize};

use crate::{ModelError, Result};

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Speed of light in vacuum, km per millisecond.
pub const SPEED_OF_LIGHT_KM_PER_MS: f64 = 299.792_458;

/// Effective propagation speed in optical fiber: roughly 2/3 of c.
pub const FIBER_SPEED_KM_PER_MS: f64 = SPEED_OF_LIGHT_KM_PER_MS * 2.0 / 3.0;

/// Submarine cables do not follow great circles: slack, routing around
/// hazards and landing constraints add path length. Nautilus uses a
/// comparable inflation factor when validating mappings against RTTs.
pub const CABLE_PATH_INFLATION: f64 = 1.2;

/// A point on the Earth's surface, stored in micro-degrees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in micro-degrees, range `[-90e6, 90e6]`.
    lat_micro: i64,
    /// Longitude in micro-degrees, range `[-180e6, 180e6]`.
    lon_micro: i64,
}

impl GeoPoint {
    /// Builds a point from degrees, validating the ranges.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Result<Self> {
        let lat_micro = (lat_deg * 1e6).round() as i64;
        let lon_micro = (lon_deg * 1e6).round() as i64;
        if !(-90_000_000..=90_000_000).contains(&lat_micro)
            || !(-180_000_000..=180_000_000).contains(&lon_micro)
        {
            return Err(ModelError::InvalidCoordinate { lat_micro, lon_micro });
        }
        Ok(GeoPoint { lat_micro, lon_micro })
    }

    /// Builds a point from degrees, panicking on invalid input.
    ///
    /// Intended for compile-time-known coordinates (the world generator's
    /// city tables); use [`GeoPoint::new`] for untrusted input.
    pub fn of(lat_deg: f64, lon_deg: f64) -> Self {
        Self::new(lat_deg, lon_deg).expect("coordinate literal out of range")
    }

    /// Latitude in degrees.
    pub fn lat(&self) -> f64 {
        self.lat_micro as f64 / 1e6
    }

    /// Longitude in degrees.
    pub fn lon(&self) -> f64 {
        self.lon_micro as f64 / 1e6
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat().to_radians(), self.lon().to_radians());
        let (lat2, lon2) = (other.lat().to_radians(), other.lon().to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2)
            + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().min(1.0).asin()
    }

    /// One-way propagation delay over fiber laid along (approximately) the
    /// great circle between the two points, in milliseconds.
    pub fn fiber_latency_ms(&self, other: &GeoPoint) -> f64 {
        self.distance_km(other) * CABLE_PATH_INFLATION / FIBER_SPEED_KM_PER_MS
    }

    /// Minimum physically possible one-way delay (straight fiber, no slack).
    /// Nautilus uses this as the speed-of-light sanity bound: any measured
    /// RTT below `2 *` this value is physically impossible.
    pub fn min_fiber_latency_ms(&self, other: &GeoPoint) -> f64 {
        self.distance_km(other) / FIBER_SPEED_KM_PER_MS
    }

    /// Linear interpolation along the segment (in coordinate space).
    ///
    /// Good enough for placing intermediate cable waypoints in the synthetic
    /// world; not a geodesic interpolation.
    pub fn lerp(&self, other: &GeoPoint, t: f64) -> GeoPoint {
        let t = t.clamp(0.0, 1.0);
        GeoPoint {
            lat_micro: self.lat_micro
                + ((other.lat_micro - self.lat_micro) as f64 * t).trunc() as i64,
            lon_micro: self.lon_micro
                + ((other.lon_micro - self.lon_micro) as f64 * t).trunc() as i64,
        }
    }
}

impl std::fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.4}, {:.4})", self.lat(), self.lon())
    }
}

/// An axis-aligned geographic bounding box, used to express spatial scopes
/// such as "Europe" or a disaster's affected area.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoBounds {
    pub min_lat: f64,
    pub max_lat: f64,
    pub min_lon: f64,
    pub max_lon: f64,
}

impl GeoBounds {
    /// Builds a bounding box; callers must pass `min <= max` on both axes.
    pub fn new(min_lat: f64, max_lat: f64, min_lon: f64, max_lon: f64) -> Self {
        debug_assert!(min_lat <= max_lat && min_lon <= max_lon);
        GeoBounds { min_lat, max_lat, min_lon, max_lon }
    }

    /// Whether the point falls inside (inclusive) the box.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        let (lat, lon) = (p.lat(), p.lon());
        lat >= self.min_lat && lat <= self.max_lat && lon >= self.min_lon && lon <= self.max_lon
    }

    /// Geometric centre of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::of(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )
    }
}

/// A circular disaster footprint: an epicentre and a radius.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoCircle {
    pub center: GeoPoint,
    pub radius_km: f64,
}

impl GeoCircle {
    pub fn new(center: GeoPoint, radius_km: f64) -> Self {
        GeoCircle { center, radius_km }
    }

    /// Whether the point lies within the footprint.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        self.center.distance_km(p) <= self.radius_km
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_distances() {
        // London <-> New York is ~5570 km.
        let london = GeoPoint::of(51.5074, -0.1278);
        let nyc = GeoPoint::of(40.7128, -74.0060);
        let d = london.distance_km(&nyc);
        assert!((5500.0..5650.0).contains(&d), "got {d}");

        // Singapore <-> Marseille (SeaMeWe-5 endpoints) is ~10,000 km direct.
        let sin = GeoPoint::of(1.3521, 103.8198);
        let mrs = GeoPoint::of(43.2965, 5.3698);
        let d = sin.distance_km(&mrs);
        assert!((9800.0..10600.0).contains(&d), "got {d}");
    }

    #[test]
    fn distance_is_zero_on_self_and_symmetric() {
        let a = GeoPoint::of(12.34, 56.78);
        let b = GeoPoint::of(-45.0, 170.0);
        assert!(a.distance_km(&a) < 1e-9);
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn fiber_latency_exceeds_physical_minimum() {
        let a = GeoPoint::of(35.0, 139.0);
        let b = GeoPoint::of(37.0, -122.0);
        assert!(a.fiber_latency_ms(&b) > a.min_fiber_latency_ms(&b));
    }

    #[test]
    fn invalid_coordinates_rejected() {
        assert!(GeoPoint::new(91.0, 0.0).is_err());
        assert!(GeoPoint::new(0.0, -180.5).is_err());
        assert!(GeoPoint::new(-90.0, 180.0).is_ok());
    }

    #[test]
    fn bounds_contains_center() {
        let b = GeoBounds::new(35.0, 70.0, -10.0, 40.0); // roughly Europe
        assert!(b.contains(&b.center()));
        assert!(b.contains(&GeoPoint::of(48.85, 2.35))); // Paris
        assert!(!b.contains(&GeoPoint::of(1.35, 103.82))); // Singapore
    }

    #[test]
    fn circle_contains_epicentre_and_respects_radius() {
        let c = GeoCircle::new(GeoPoint::of(38.0, 23.7), 300.0);
        assert!(c.contains(&GeoPoint::of(38.0, 23.7)));
        assert!(c.contains(&GeoPoint::of(39.0, 23.7))); // ~111 km north
        assert!(!c.contains(&GeoPoint::of(48.85, 2.35)));
    }

    #[test]
    fn lerp_endpoints() {
        let a = GeoPoint::of(0.0, 0.0);
        let b = GeoPoint::of(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.lat() - 5.0).abs() < 1e-5);
        assert!((mid.lon() - 10.0).abs() < 1e-5);
    }

    #[test]
    fn display_formats_degrees() {
        let p = GeoPoint::of(1.5, -2.25);
        assert_eq!(format!("{p}"), "(1.5000, -2.2500)");
    }
}
