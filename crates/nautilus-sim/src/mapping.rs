//! The link→cable inference algorithm.

use std::collections::BTreeMap;

use net_model::{CableId, LinkId};
use serde::{Deserialize, Serialize};
use world::World;

/// Tunables for the mapper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MappingConfig {
    /// Candidates kept per link (the real tool reports a ranked short list).
    pub max_candidates: usize,
    /// Reject candidates whose total route exceeds this multiple of the
    /// endpoint great-circle distance.
    pub max_detour_ratio: f64,
    /// Slack multiplier applied to the latency-implied distance bound
    /// before declaring a cable infeasible (accounts for queueing in the
    /// measured latency).
    pub sol_slack: f64,
}

impl Default for MappingConfig {
    fn default() -> Self {
        MappingConfig { max_candidates: 4, max_detour_ratio: 2.6, sol_slack: 1.25 }
    }
}

/// Ranked candidate cables for one IP link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CableMapping {
    pub link: LinkId,
    /// `(cable, confidence)` sorted by descending confidence; confidences
    /// over a link sum to 1 when any candidate survives.
    pub candidates: Vec<(CableId, f64)>,
}

impl CableMapping {
    /// The most likely cable, if any candidate survived validation.
    pub fn best(&self) -> Option<CableId> {
        self.candidates.first().map(|(c, _)| *c)
    }

    /// Confidence assigned to a specific cable (0 if absent).
    pub fn confidence_for(&self, cable: CableId) -> f64 {
        self.candidates.iter().find(|(c, _)| *c == cable).map(|(_, s)| *s).unwrap_or(0.0)
    }
}

/// The full inferred cross-layer map.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MappingTable {
    /// One entry per submarine-suspected link, in link order.
    pub mappings: Vec<CableMapping>,
}

impl MappingTable {
    /// Mapping for a specific link.
    pub fn for_link(&self, link: LinkId) -> Option<&CableMapping> {
        self.mappings.iter().find(|m| m.link == link)
    }

    /// Links predicted (at any confidence) to ride `cable`, with their
    /// confidence, descending.
    pub fn predicted_links_on_cable(&self, cable: CableId) -> Vec<(LinkId, f64)> {
        let mut out: Vec<(LinkId, f64)> = self
            .mappings
            .iter()
            .filter_map(|m| {
                let c = m.confidence_for(cable);
                (c > 0.0).then_some((m.link, c))
            })
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        out
    }

    /// Number of links with at least one candidate.
    pub fn mapped_count(&self) -> usize {
        self.mappings.iter().filter(|m| !m.candidates.is_empty()).count()
    }
}

/// The mapper.
#[derive(Debug, Clone, Default)]
pub struct NautilusMapper {
    config: MappingConfig,
}

impl NautilusMapper {
    pub fn new(config: MappingConfig) -> Self {
        NautilusMapper { config }
    }

    /// Runs the inference over every submarine-suspected link in the world.
    ///
    /// A link is *suspected submarine* when its endpoints sit in different
    /// cities and no plausible terrestrial route explains its latency —
    /// mirroring how the real tool pre-filters (it cannot see the
    /// generator's `Conduit` tag, and neither does this filter).
    pub fn map_world(&self, world: &World) -> MappingTable {
        let mut mappings = Vec::new();
        for link in &world.links {
            if link.a.city == link.b.city {
                continue; // metro link — out of scope
            }
            if !self.suspect_submarine(world, link) {
                continue;
            }
            mappings.push(self.map_link(world, link));
        }
        MappingTable { mappings }
    }

    /// Heuristic pre-filter: endpoints on different landmasses, or a
    /// latency that terrestrial fiber over the direct land route cannot
    /// explain.
    fn suspect_submarine(&self, world: &World, link: &world::IpLink) -> bool {
        let ca = world.city(link.a.city);
        let cb = world.city(link.b.city);
        let sea_separated = landmass(ca.region) != landmass(cb.region)
            || is_island(ca.country.code())
            || is_island(cb.country.code());
        sea_separated
    }

    /// Scores every cable for one link.
    pub fn map_link(&self, world: &World, link: &world::IpLink) -> CableMapping {
        let pa = world.city(link.a.city).location;
        let pb = world.city(link.b.city).location;
        let direct_km = pa.distance_km(&pb).max(50.0);
        // Latency bound: one-way latency → maximum physical route length.
        let implied_km =
            link.latency_ms * net_model::geo::FIBER_SPEED_KM_PER_MS * self.config.sol_slack;

        // The length the measured latency actually implies (no slack):
        // the strongest discriminator between parallel systems that serve
        // the same corridor with slightly different geometry.
        let measured_km = (link.latency_ms - 0.5).max(0.1) * net_model::geo::FIBER_SPEED_KM_PER_MS;

        let mut scored: Vec<(CableId, f64)> = Vec::new();
        for cable in &world.cables {
            if let Some(route_km) = best_route_via_cable(world, cable, link) {
                if route_km > implied_km {
                    continue; // physically impossible given measured latency
                }
                let detour = route_km / direct_km;
                if detour > self.config.max_detour_ratio {
                    continue;
                }
                // Score: latency fit (how well the cable's route length
                // explains the measured latency) over detour, plus a bonus
                // when the cable lands in both endpoint countries.
                let fit = (route_km - measured_km).abs() / measured_km.max(1.0);
                let mut score = (1.0 / detour) * (1.0 / (0.05 + fit));
                let ca = world.city(link.a.city);
                let cb = world.city(link.b.city);
                let lands_a = cable
                    .landings
                    .iter()
                    .any(|&l| world.city(l).country == ca.country);
                let lands_b = cable
                    .landings
                    .iter()
                    .any(|&l| world.city(l).country == cb.country);
                if lands_a {
                    score *= 1.35;
                }
                if lands_b {
                    score *= 1.35;
                }
                scored.push((cable.id, score));
            }
        }

        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(self.config.max_candidates);
        let total: f64 = scored.iter().map(|(_, s)| s).sum();
        if total > 0.0 {
            for (_, s) in &mut scored {
                *s /= total;
            }
        }
        CableMapping { link: link.id, candidates: scored }
    }
}

/// Shortest plausible route using `cable` for the sea span: approach to the
/// best entry landing (land-detour inflated, like real backhaul), along the
/// cable to the best exit landing, then on to the destination.
///
/// Candidates where the cable itself carries less than 30% of the total
/// route are rejected — a system the packet barely touches cannot be "the"
/// cable a link rides, however well the geometry happens to add up.
/// Returns `None` when the cable has no usable landing pair.
fn best_route_via_cable(
    world: &World,
    cable: &world::Cable,
    link: &world::IpLink,
) -> Option<f64> {
    /// Backhaul from the endpoint city to the landing station is land
    /// fiber; use the same detour factor the conduit model uses.
    const APPROACH_DETOUR: f64 = 1.25;
    /// Minimum share of the route the cable itself must carry.
    const MIN_ALONG_FRACTION: f64 = 0.3;

    let pa = world.city(link.a.city).location;
    let pb = world.city(link.b.city).location;
    let n = cable.landings.len();
    if n < 2 {
        return None;
    }
    // Prefix sums of segment lengths for O(1) span queries.
    let mut prefix = vec![0.0f64; n];
    for (i, seg) in cable.segments.iter().enumerate() {
        prefix[i + 1] = prefix[i] + seg.length_km;
    }
    let mut best: Option<f64> = None;
    for i in 0..n {
        let li = world.city(cable.landings[i]).location;
        let approach_a = pa.distance_km(&li) * APPROACH_DETOUR;
        for j in 0..n {
            if i == j {
                continue;
            }
            let lj = world.city(cable.landings[j]).location;
            let approach_b = pb.distance_km(&lj) * APPROACH_DETOUR;
            let (lo, hi) = if i < j { (i, j) } else { (j, i) };
            let along = prefix[hi] - prefix[lo];
            let total = approach_a + along + approach_b;
            if along < MIN_ALONG_FRACTION * total {
                continue;
            }
            if best.is_none_or(|b| total < b) {
                best = Some(total);
            }
        }
    }
    best
}

fn is_island(code: &str) -> bool {
    matches!(code, "GB" | "JP" | "TW" | "LK" | "MV" | "ID" | "AU" | "SG" | "HK")
}

fn landmass(region: net_model::Region) -> u8 {
    use net_model::Region;
    match region {
        Region::Europe | Region::Asia | Region::MiddleEast | Region::Africa => 0,
        Region::NorthAmerica => 1,
        Region::SouthAmerica => 2,
        Region::Oceania => 3,
    }
}

/// Groups mappings by best-candidate cable: the inferred cable→links view.
pub fn links_by_cable(table: &MappingTable) -> BTreeMap<CableId, Vec<LinkId>> {
    let mut out: BTreeMap<CableId, Vec<LinkId>> = BTreeMap::new();
    for m in &table.mappings {
        if let Some(best) = m.best() {
            out.entry(best).or_default().push(m.link);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use world::{generate, WorldConfig};

    fn mapped() -> (World, MappingTable) {
        let world = generate(&WorldConfig::default());
        let table = NautilusMapper::new(MappingConfig::default()).map_world(&world);
        (world, table)
    }

    #[test]
    fn confidences_are_normalized() {
        let (_, table) = mapped();
        assert!(table.mapped_count() > 50, "mapped {}", table.mapped_count());
        for m in &table.mappings {
            if !m.candidates.is_empty() {
                let sum: f64 = m.candidates.iter().map(|(_, c)| c).sum();
                assert!((sum - 1.0).abs() < 1e-9, "link {} sums to {sum}", m.link);
                // Sorted descending.
                for w in m.candidates.windows(2) {
                    assert!(w[0].1 >= w[1].1);
                }
            }
        }
    }

    #[test]
    fn ground_truth_cable_is_usually_a_candidate() {
        let (world, table) = mapped();
        let mut hits = 0usize;
        let mut total = 0usize;
        for m in &table.mappings {
            let truth = world.link(m.link).path.cables();
            if truth.is_empty() {
                continue;
            }
            total += 1;
            let candidate_set: Vec<CableId> = m.candidates.iter().map(|(c, _)| *c).collect();
            if truth.iter().any(|t| candidate_set.contains(t)) {
                hits += 1;
            }
        }
        assert!(total > 50);
        let recall = hits as f64 / total as f64;
        assert!(recall > 0.5, "candidate recall {recall:.2}");
    }

    #[test]
    fn sol_validation_rejects_overlong_cables() {
        let (world, _) = mapped();
        // Construct a fake low-latency link between London and New York and
        // confirm that an Asia-Pacific cable can never be a candidate.
        let mapper = NautilusMapper::new(MappingConfig::default());
        let lon = world.cities.iter().find(|c| c.name == "London").unwrap().id;
        let nyc = world.cities.iter().find(|c| c.name == "New York").unwrap().id;
        let link = world::IpLink {
            id: LinkId(9999),
            a: world::LinkEnd { asn: world.ases[0].asn, city: lon, addr: net_model::Ipv4Addr(1) },
            b: world::LinkEnd { asn: world.ases[1].asn, city: nyc, addr: net_model::Ipv4Addr(2) },
            latency_ms: 30.0, // transatlantic one-way
            capacity_gbps: 100.0,
            path: world::PhysicalPath::default(),
            conduit: world::Conduit::Submarine,
        };
        let m = mapper.map_link(&world, &link);
        let apg = world.cable_by_name("Asia Pacific Gateway").unwrap().id;
        assert_eq!(m.confidence_for(apg), 0.0);
        // And a real transatlantic system should rank.
        let marea = world.cable_by_name("MAREA").unwrap().id;
        let tat14 = world.cable_by_name("TAT-14").unwrap().id;
        let grace = world.cable_by_name("Grace Hopper").unwrap().id;
        let dunant = world.cable_by_name("Dunant").unwrap().id;
        let best = m.best().expect("some candidate");
        assert!(
            [marea, tat14, grace, dunant].contains(&best),
            "best {best:?} should be transatlantic"
        );
    }

    #[test]
    fn metro_links_are_skipped() {
        let (world, table) = mapped();
        for m in &table.mappings {
            let l = world.link(m.link);
            assert_ne!(l.a.city, l.b.city);
        }
    }
}
