//! Cross-layer dependency tables: which links, ASes and countries depend
//! on each cable system — the data product the Xaminer substrate and the
//! case-study workflows consume.

use std::collections::{BTreeMap, BTreeSet};

use net_model::{Asn, CableId, Country, LinkId};
use serde::{Deserialize, Serialize};
use world::World;

use crate::mapping::MappingTable;

/// Everything that depends on one cable.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CableDependencies {
    pub cable: CableId,
    /// Dependent IP links, ascending.
    pub links: Vec<LinkId>,
    /// ASes with at least one dependent link, ascending.
    pub ases: Vec<Asn>,
    /// Countries hosting an endpoint of a dependent link, ascending.
    pub countries: Vec<Country>,
}

/// Dependency view over all cables.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DependencyTable {
    entries: BTreeMap<CableId, CableDependencies>,
}

impl DependencyTable {
    /// Builds the table from an *inferred* mapping (confidence-weighted:
    /// a link counts as dependent on every candidate cable whose
    /// confidence is at least `min_confidence`).
    pub fn from_mapping(world: &World, table: &MappingTable, min_confidence: f64) -> Self {
        let mut entries: BTreeMap<CableId, CableDependencies> = BTreeMap::new();
        for m in &table.mappings {
            for (cable, conf) in &m.candidates {
                if *conf < min_confidence {
                    continue;
                }
                let link = world.link(m.link);
                let e = entries.entry(*cable).or_insert_with(|| CableDependencies {
                    cable: *cable,
                    ..Default::default()
                });
                push_link(world, e, link);
            }
        }
        finish(&mut entries);
        DependencyTable { entries }
    }

    /// Builds the table from the generator's ground truth (oracle mode —
    /// used by expert baselines and accuracy evaluation).
    pub fn from_ground_truth(world: &World) -> Self {
        let mut entries: BTreeMap<CableId, CableDependencies> = BTreeMap::new();
        for link in &world.links {
            for cable in link.path.cables() {
                let e = entries.entry(cable).or_insert_with(|| CableDependencies {
                    cable,
                    ..Default::default()
                });
                push_link(world, e, link);
            }
        }
        finish(&mut entries);
        DependencyTable { entries }
    }

    /// Dependencies of one cable (empty if nothing depends on it).
    pub fn for_cable(&self, cable: CableId) -> CableDependencies {
        self.entries.get(&cable).cloned().unwrap_or(CableDependencies {
            cable,
            ..Default::default()
        })
    }

    /// All cables with any dependency, ascending.
    pub fn cables(&self) -> Vec<CableId> {
        self.entries.keys().copied().collect()
    }

    /// Countries depending on `cable`.
    pub fn countries_on(&self, cable: CableId) -> Vec<Country> {
        self.for_cable(cable).countries
    }
}

fn push_link(world: &World, e: &mut CableDependencies, link: &world::IpLink) {
    e.links.push(link.id);
    e.ases.push(link.a.asn);
    e.ases.push(link.b.asn);
    e.countries.push(world.city(link.a.city).country);
    e.countries.push(world.city(link.b.city).country);
}

fn finish(entries: &mut BTreeMap<CableId, CableDependencies>) {
    for e in entries.values_mut() {
        dedup_sorted(&mut e.links);
        dedup_sorted(&mut e.ases);
        dedup_sorted(&mut e.countries);
    }
}

fn dedup_sorted<T: Ord>(v: &mut Vec<T>) {
    v.sort();
    v.dedup();
}

/// Countries affected by the failure of a set of links: endpoint countries
/// of each failed link.
pub fn countries_of_links(world: &World, links: &[LinkId]) -> BTreeSet<Country> {
    links
        .iter()
        .flat_map(|&l| {
            let link = world.link(l);
            [world.city(link.a.city).country, world.city(link.b.city).country]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{MappingConfig, NautilusMapper};
    use world::{generate, WorldConfig};

    #[test]
    fn ground_truth_table_matches_world() {
        let world = generate(&WorldConfig::default());
        let table = DependencyTable::from_ground_truth(&world);
        let smw5 = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let deps = table.for_cable(smw5);
        let expected = world.links_on_cable(smw5);
        assert_eq!(deps.links, expected);
        assert!(!deps.countries.is_empty());
        assert!(!deps.ases.is_empty());
    }

    #[test]
    fn inferred_table_overlaps_ground_truth() {
        let world = generate(&WorldConfig::default());
        let mapping = NautilusMapper::new(MappingConfig::default()).map_world(&world);
        let inferred = DependencyTable::from_mapping(&world, &mapping, 0.2);
        let truth = DependencyTable::from_ground_truth(&world);
        let smw5 = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let a: BTreeSet<_> = inferred.for_cable(smw5).links.into_iter().collect();
        let b: BTreeSet<_> = truth.for_cable(smw5).links.into_iter().collect();
        assert!(!a.is_empty());
        let inter = a.intersection(&b).count();
        assert!(inter > 0, "inferred and true dependency sets must overlap");
    }

    #[test]
    fn entries_are_sorted_and_deduped() {
        let world = generate(&WorldConfig::default());
        let table = DependencyTable::from_ground_truth(&world);
        for cable in table.cables() {
            let e = table.for_cable(cable);
            for w in e.links.windows(2) {
                assert!(w[0] < w[1]);
            }
            for w in e.countries.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn countries_of_links_collects_endpoints() {
        let world = generate(&WorldConfig::default());
        let link = &world.links[0];
        let set = countries_of_links(&world, &[link.id]);
        assert!(set.contains(&world.city(link.a.city).country));
        assert!(set.contains(&world.city(link.b.city).country));
    }

    #[test]
    fn unknown_cable_has_empty_dependencies() {
        let world = generate(&WorldConfig::default());
        let table = DependencyTable::from_ground_truth(&world);
        let deps = table.for_cable(CableId(9_999));
        assert!(deps.links.is_empty() && deps.ases.is_empty() && deps.countries.is_empty());
    }
}
