//! # nautilus-sim — cross-layer cartography
//!
//! A from-scratch implementation of the role Nautilus ([22] in the paper)
//! plays in the ArachNet case studies: mapping IP-layer links to the
//! submarine cable systems they ride, with confidence scores.
//!
//! The mapper never looks at the world's ground-truth physical paths. It
//! infers candidates the way the real system does:
//!
//! 1. **geolocate** both link endpoints (city-level),
//! 2. **enumerate** cable systems whose landing geometry can plausibly
//!    connect the endpoints, scoring each by detour ratio (cable route
//!    length vs. great-circle distance) and landing proximity,
//! 3. **validate** against the speed-of-light bound implied by the link's
//!    measured latency — a cable longer than the latency allows is
//!    physically impossible and is discarded,
//! 4. **normalize** surviving scores into per-link confidence values.
//!
//! Because the world generator *does* know the truth, the crate also ships
//! an evaluation harness ([`evaluate`]) reporting precision/recall of the
//! inferred mapping — the numbers quoted in EXPERIMENTS.md.

pub mod dependency;
pub mod mapping;
pub mod validation;

pub use dependency::{CableDependencies, DependencyTable};
pub use mapping::{CableMapping, MappingConfig, MappingTable, NautilusMapper};
pub use validation::{evaluate, MappingAccuracy};

#[cfg(test)]
mod tests {
    use super::*;
    use world::{generate, WorldConfig};

    #[test]
    fn end_to_end_mapping_quality() {
        let world = generate(&WorldConfig::default());
        let table = NautilusMapper::new(MappingConfig::default()).map_world(&world);
        let acc = evaluate(&table, &world);
        // The mapper must be substantially better than chance: the world
        // has ~55 cables, random top-1 would be ~2%.
        assert!(
            acc.top1_accuracy > 0.35,
            "top-1 accuracy {:.2} too low",
            acc.top1_accuracy
        );
        assert!(
            acc.top3_recall > 0.5,
            "top-3 recall {:.2} too low",
            acc.top3_recall
        );
    }
}
