//! Accuracy evaluation of the inferred mapping against the generator's
//! ground truth. The real Nautilus paper validates against operator
//! ground truth and latency constraints; here the synthetic world plays
//! the operator.

use serde::{Deserialize, Serialize};
use world::World;

use crate::mapping::MappingTable;

/// Aggregate accuracy of a mapping table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingAccuracy {
    /// Links whose top candidate is one of the true cables / links with
    /// any true submarine segment.
    pub top1_accuracy: f64,
    /// Links where any of the top-3 candidates is a true cable.
    pub top3_recall: f64,
    /// Mean confidence assigned to true cables (calibration signal).
    pub mean_true_confidence: f64,
    /// Number of links evaluated (submarine ground truth only).
    pub evaluated: usize,
}

/// Evaluates the mapping against ground truth.
pub fn evaluate(table: &MappingTable, world: &World) -> MappingAccuracy {
    let mut top1 = 0usize;
    let mut top3 = 0usize;
    let mut conf_sum = 0.0f64;
    let mut evaluated = 0usize;

    for m in &table.mappings {
        let truth = world.link(m.link).path.cables();
        if truth.is_empty() {
            continue; // terrestrial ground truth: mapper shouldn't be judged on it
        }
        evaluated += 1;
        if let Some(best) = m.best() {
            if truth.contains(&best) {
                top1 += 1;
            }
        }
        if m.candidates.iter().take(3).any(|(c, _)| truth.contains(c)) {
            top3 += 1;
        }
        conf_sum += truth.iter().map(|&t| m.confidence_for(t)).sum::<f64>();
    }

    MappingAccuracy {
        top1_accuracy: ratio(top1, evaluated),
        top3_recall: ratio(top3, evaluated),
        mean_true_confidence: if evaluated == 0 { 0.0 } else { conf_sum / evaluated as f64 },
        evaluated,
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{CableMapping, MappingConfig, NautilusMapper};
    use net_model::{CableId, LinkId};
    use world::{generate, WorldConfig};

    #[test]
    fn empty_table_evaluates_to_zero() {
        let world = generate(&WorldConfig::default());
        let acc = evaluate(&MappingTable::default(), &world);
        assert_eq!(acc.evaluated, 0);
        assert_eq!(acc.top1_accuracy, 0.0);
    }

    #[test]
    fn oracle_mapping_scores_perfectly() {
        let world = generate(&WorldConfig::default());
        // Build a fake table that reads the ground truth directly.
        let mappings = world
            .links
            .iter()
            .filter(|l| !l.path.cables().is_empty())
            .map(|l| CableMapping {
                link: l.id,
                candidates: vec![(l.path.cables()[0], 1.0)],
            })
            .collect();
        let acc = evaluate(&MappingTable { mappings }, &world);
        assert!(acc.evaluated > 0);
        assert_eq!(acc.top1_accuracy, 1.0);
        assert_eq!(acc.top3_recall, 1.0);
    }

    #[test]
    fn wrong_mapping_scores_zero() {
        let world = generate(&WorldConfig::default());
        // Map every submarine link to a cable it does not ride.
        let mappings: Vec<CableMapping> = world
            .links
            .iter()
            .filter(|l| !l.path.cables().is_empty())
            .map(|l| {
                let truth = l.path.cables();
                let wrong = world
                    .cables
                    .iter()
                    .map(|c| c.id)
                    .find(|c| !truth.contains(c))
                    .unwrap_or(CableId(0));
                CableMapping { link: l.id, candidates: vec![(wrong, 1.0)] }
            })
            .collect();
        let acc = evaluate(&MappingTable { mappings }, &world);
        assert_eq!(acc.top1_accuracy, 0.0);
    }

    #[test]
    fn real_mapper_beats_chance_substantially() {
        let world = generate(&WorldConfig::default());
        let table = NautilusMapper::new(MappingConfig::default()).map_world(&world);
        let acc = evaluate(&table, &world);
        assert!(acc.evaluated > 50);
        assert!(acc.mean_true_confidence > 0.2, "calibration {acc:?}");
    }

    #[test]
    fn accuracy_ignores_terrestrial_links() {
        let world = generate(&WorldConfig::default());
        // A table containing only a terrestrial link mapping must not count.
        let terrestrial = world
            .links
            .iter()
            .find(|l| l.path.cables().is_empty())
            .expect("some terrestrial link");
        let table = MappingTable {
            mappings: vec![CableMapping {
                link: LinkId(terrestrial.id.0),
                candidates: vec![(CableId(0), 1.0)],
            }],
        };
        let acc = evaluate(&table, &world);
        assert_eq!(acc.evaluated, 0);
    }
}
